"""Compare two archived result sets: the calibration-regression tool.

``python -m repro.bench --json before.json`` archives a run; after a
model change, archive again and diff. A change that silently moves a
figure's numbers — exactly what the calibration tests guard against in
aggregate — shows up here row by row, with the relative deltas that
matter highlighted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Delta", "compare_results", "load_archive", "format_deltas"]


@dataclass(frozen=True)
class Delta:
    """One numeric cell that moved between archives."""

    exp_id: str
    row_key: str
    column: str
    before: float
    after: float

    @property
    def rel_change(self) -> float:
        """Relative change (after/before - 1); inf when before == 0."""
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return self.after / self.before - 1.0


def load_archive(path: Path | str) -> dict[str, dict]:
    """Load a ``--json`` archive, keyed by experiment id."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError("archive must be the JSON list --json writes")
    return {entry["exp_id"]: entry for entry in data}


def _row_key(exp: dict, row: dict) -> str:
    """A stable identity for a row: its non-numeric column values."""
    parts = [
        f"{c}={row[c]}"
        for c in exp["columns"]
        if c in row and not isinstance(row[c], (int, float))
    ]
    if not parts:  # purely numeric rows: fall back to the first column
        first = exp["columns"][0]
        parts = [f"{first}={row.get(first)}"]
    return ",".join(parts)


def compare_results(
    before: dict[str, dict],
    after: dict[str, dict],
    *,
    threshold: float = 0.02,
) -> list[Delta]:
    """Numeric cells whose relative change exceeds ``threshold``.

    Rows are matched by their non-numeric identity columns; experiments
    or rows present on only one side are reported as full-magnitude
    deltas against 0.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    deltas: list[Delta] = []
    for exp_id in sorted(set(before) | set(after)):
        b_exp, a_exp = before.get(exp_id), after.get(exp_id)
        b_rows = (
            {_row_key(b_exp, r): r for r in b_exp["rows"]} if b_exp else {}
        )
        a_rows = (
            {_row_key(a_exp, r): r for r in a_exp["rows"]} if a_exp else {}
        )
        for key in sorted(set(b_rows) | set(a_rows)):
            b_row = b_rows.get(key, {})
            a_row = a_rows.get(key, {})
            for col in sorted(set(b_row) | set(a_row)):
                b_val, a_val = b_row.get(col), a_row.get(col)
                if not (
                    isinstance(b_val, (int, float))
                    or isinstance(a_val, (int, float))
                ):
                    continue
                if isinstance(b_val, bool) or isinstance(a_val, bool):
                    continue
                b_num = float(b_val) if isinstance(b_val, (int, float)) else 0.0
                a_num = float(a_val) if isinstance(a_val, (int, float)) else 0.0
                d = Delta(exp_id, key, col, b_num, a_num)
                if abs(d.rel_change) > threshold or (
                    (b_val is None) != (a_val is None)
                ):
                    deltas.append(d)
    return deltas


def format_deltas(deltas: list[Delta], *, limit: int = 50) -> str:
    """Readable report of the largest movements."""
    if not deltas:
        return "no significant changes"
    ranked = sorted(deltas, key=lambda d: -abs(d.rel_change))[:limit]
    lines = [f"{len(deltas)} changed cell(s); top {len(ranked)}:"]
    for d in ranked:
        pct = d.rel_change * 100
        lines.append(
            f"  {d.exp_id:10s} {d.row_key:40.40s} {d.column:20.20s} "
            f"{d.before:12.4g} -> {d.after:12.4g} ({pct:+7.1f}%)"
        )
    return "\n".join(lines)
