"""``python -m repro.bench`` entry point."""

import sys

from .runner import main

sys.exit(main())
