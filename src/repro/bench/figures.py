"""Experiment drivers: one function per table/figure of the paper.

Each function regenerates the rows behind one evaluation artifact
(Sec. VII) and returns an :class:`ExperimentResult`. The benchmark files
under ``benchmarks/`` call these; ``python -m repro.bench`` prints them
all; EXPERIMENTS.md records paper-vs-measured per figure.
"""

from __future__ import annotations

from ..baselines import (
    CPUOnlyBaseline,
    FasterTransformerBaseline,
    GPUOnlyBaseline,
    et_comparison,
    layer_latency_sweep,
)
from ..engine import (
    DenseLatencyModel,
    MoELatencyModel,
    Workload,
    best_throughput,
)
from ..hardware import (
    A100_40GB,
    DType,
    dgx2_v100,
    dgx_a100_cluster,
    lambda_a6000_workstation,
)
from ..kernels import DEEPSPEED_FP16, DEEPSPEED_INT8, FASTER_TRANSFORMER_FP16
from ..model import DENSE_ZOO, MOE_PARALLELISM, MOE_ZOO, MoEParallelism, get_model
from ..zero import ZeroInferenceEngine
from .tables import ExperimentResult

__all__ = [
    "table1",
    "table2",
    "fig6_dense_latency",
    "fig7_moe_latency",
    "fig8_throughput",
    "fig9_zero_inference",
    "fig10a_kernel_breakdown",
    "fig10b_pipeline_ablation",
    "fig10c_prefetch",
    "fig11_moe_bandwidth",
    "fig12_et_comparison",
    "fig13_hybrid_prompt",
    "ALL_EXPERIMENTS",
]

# Table I's Fig. 6 deployment: model -> tensor-parallel degree.
FIG6_TP = {
    "gpt2-1.5b": 1,
    "gpt-neo-2.7b": 1,
    "gpt-j-6b": 1,
    "gpt-13b": 1,
    "gpt-neox-20b": 2,
    "gpt-50b": 4,
    "gpt-87b": 8,
    "lm-175b": 16,
}


def table1() -> ExperimentResult:
    """Table I: dense model configurations."""
    rows = []
    for name, cfg in DENSE_ZOO.items():
        rows.append(
            {
                "model": name,
                "params(B)": cfg.total_params / 1e9,
                "listed(B)": cfg.listed_params / 1e9,
                "hidden": cfg.hidden,
                "layers": cfg.layers,
                "heads": cfg.heads,
                "fp16_gb": cfg.param_bytes(DType.FP16) / 1e9,
            }
        )
    return ExperimentResult(
        exp_id="table1",
        title="Dense model configurations (Table I)",
        columns=["model", "params(B)", "listed(B)", "hidden", "layers",
                 "heads", "fp16_gb"],
        rows=rows,
    )


def table2() -> ExperimentResult:
    """Table II: sparse model configurations and parallelism."""
    rows = []
    for name, cfg in MOE_ZOO.items():
        par = MOE_PARALLELISM[name]
        rows.append(
            {
                "model": name,
                "listed(B)": cfg.listed_params / 1e9,
                "est(B)": cfg.total_params / 1e9,
                "layers": cfg.layers,
                "hidden": cfg.hidden,
                "MP": par.mp_degree,
                "EP": par.ep_degree,
                "expert_slicing": par.expert_slicing,
                "gpus": par.num_gpus,
            }
        )
    return ExperimentResult(
        exp_id="table2",
        title="Sparse (MoE) model configurations (Table II)",
        columns=["model", "listed(B)", "est(B)", "layers", "hidden", "MP",
                 "EP", "expert_slicing", "gpus"],
        rows=rows,
    )


def fig6_dense_latency(
    *, batches: tuple[int, ...] = (1, 4, 16, 32), models: tuple[str, ...] | None = None
) -> ExperimentResult:
    """Fig. 6: DS-FP16/INT8 vs FT-FP16 latency & throughput, prompt 128 /
    gen 8, across models and batch sizes."""
    cluster = dgx_a100_cluster(4)
    names = models or tuple(FIG6_TP)
    rows = []
    for name in names:
        tp = FIG6_TP[name]
        cfg = DENSE_ZOO[name]
        for batch in batches:
            w = Workload(batch=batch, prompt_len=128, gen_tokens=8)
            lat = {}
            for label, prof in (
                ("ft_fp16", FASTER_TRANSFORMER_FP16),
                ("ds_fp16", DEEPSPEED_FP16),
                ("ds_int8", DEEPSPEED_INT8),
            ):
                model = DenseLatencyModel(cfg, cluster, tp=tp, profile=prof)
                lat[label] = model.estimate(w)
            rows.append(
                {
                    "model": name,
                    "tp": tp,
                    "batch": batch,
                    "ft_ms": lat["ft_fp16"].total_latency * 1e3,
                    "ds_fp16_ms": lat["ds_fp16"].total_latency * 1e3,
                    "ds_int8_ms": lat["ds_int8"].total_latency * 1e3,
                    "fp16_speedup": lat["ft_fp16"].total_latency
                    / lat["ds_fp16"].total_latency,
                    "int8_speedup": lat["ft_fp16"].total_latency
                    / lat["ds_int8"].total_latency,
                    "ds_tokens_per_s": lat["ds_fp16"].tokens_per_second,
                }
            )
    return ExperimentResult(
        exp_id="fig6",
        title="Dense latency/throughput vs FasterTransformer (Fig. 6)",
        columns=["model", "tp", "batch", "ft_ms", "ds_fp16_ms", "ds_int8_ms",
                 "fp16_speedup", "int8_speedup", "ds_tokens_per_s"],
        rows=rows,
        notes=["paper: DS-FP16 up to 1.55x, DS-INT8 up to 1.95x over FT-FP16; "
               "largest gains on the smallest models"],
    )


def fig7_moe_latency(*, batch: int = 8) -> ExperimentResult:
    """Fig. 7: DS-MoE vs PyTorch-MoE per-token latency and throughput on
    up to 256 GPUs (prompt 128, generating 100 tokens)."""
    cluster = dgx_a100_cluster(32)
    rows = []
    for name, cfg in MOE_ZOO.items():
        par = MOE_PARALLELISM[name]
        ds = MoELatencyModel(cfg, cluster, par, optimized=True)
        base = MoELatencyModel(cfg, cluster, par, optimized=False)
        lat_ds = ds.token_latency(batch)
        lat_base = base.token_latency(batch)
        rows.append(
            {
                "model": name,
                "params(B)": cfg.listed_params / 1e9,
                "gpus": par.num_gpus,
                "baseline_ms": lat_base * 1e3,
                "deepspeed_ms": lat_ds * 1e3,
                "speedup": lat_base / lat_ds,
                "ds_tokens_per_s_per_gpu": batch / lat_ds / par.num_gpus,
            }
        )
    return ExperimentResult(
        exp_id="fig7",
        title="MoE latency/throughput vs PyTorch baseline (Fig. 7)",
        columns=["model", "params(B)", "gpus", "baseline_ms", "deepspeed_ms",
                 "speedup", "ds_tokens_per_s_per_gpu"],
        rows=rows,
        notes=["paper: up to 7.3x latency reduction; the >1T model serves "
               "under 25 ms/token on 256 GPUs"],
    )


def fig8_throughput() -> ExperimentResult:
    """Fig. 8: best-batch generation throughput, 175B (16 GPUs, TP8xPP2)
    and 530B (40 GPUs, TP8xPP5) vs FasterTransformer (prompt 512, gen 50)."""
    cluster = dgx_a100_cluster(8)
    rows = []

    # 175B: both systems run TP8 x PP2; DS adds schedule + offload batches.
    cfg = DENSE_ZOO["lm-175b"]
    ds = DenseLatencyModel(cfg, cluster, tp=8, pp=2, hybrid_prompt_factor=2)
    ds_pt = best_throughput(ds, prompt_len=512, gen_tokens=50,
                            offload_activations=True)
    ft = FasterTransformerBaseline(cfg, cluster, tp=8, pp=2)
    ft_pt = ft.best_throughput(prompt_len=512, gen_tokens=50)
    rows.append(
        {
            "model": "lm-175b",
            "gpus": 16,
            "ft_tokens_per_s": ft_pt.tokens_per_second,
            "ft_batch": ft_pt.batch,
            "ds_tokens_per_s": ds_pt.tokens_per_second,
            "ds_batch": ds_pt.batch,
            "speedup": ds_pt.tokens_per_second / ft_pt.tokens_per_second,
        }
    )

    # 530B: DS runs TP8 x PP5; FT's TP+PP crashed in the paper, so the
    # comparator is FT with tensor slicing only — 32 ways (the largest
    # power-of-two slicing of 128 heads that fits within 40 GPUs).
    cfg = DENSE_ZOO["lm-530b"]
    ds = DenseLatencyModel(cfg, cluster, tp=8, pp=5, hybrid_prompt_factor=2)
    ds_pt = best_throughput(ds, prompt_len=512, gen_tokens=50,
                            offload_activations=True)
    ft_model = DenseLatencyModel(
        cfg, cluster, tp=32, pp=1, profile=FASTER_TRANSFORMER_FP16,
        lockstep_generation=True,
    )
    ft_pt = best_throughput(ft_model, prompt_len=512, gen_tokens=50)
    rows.append(
        {
            "model": "lm-530b",
            "gpus": 40,
            "ft_tokens_per_s": ft_pt.tokens_per_second,
            "ft_batch": ft_pt.batch,
            "ds_tokens_per_s": ds_pt.tokens_per_second,
            "ds_batch": ds_pt.batch,
            "speedup": ds_pt.tokens_per_second / ft_pt.tokens_per_second,
        }
    )
    return ExperimentResult(
        exp_id="fig8",
        title="Massive-model generation throughput vs FT (Fig. 8)",
        columns=["model", "gpus", "ft_tokens_per_s", "ft_batch",
                 "ds_tokens_per_s", "ds_batch", "speedup"],
        rows=rows,
        notes=["paper: 1.51x (175B) and 1.53x (530B, vs FT TP-only)"],
    )


def fig9_zero_inference() -> ExperimentResult:
    """Fig. 9: ZeRO-Inference — (a) batch sweep on one A6000, (b) model
    scale + TFLOPS across models, (c) multi-GPU scaling on a DGX-2."""
    rows = []
    ws = lambda_a6000_workstation(1)

    # (a) GPT-NeoX-20B generation throughput across batch sizes (prompt
    # 512, gen 50): the "benefit of larger batch size" panel.
    cfg = get_model("gpt-neox-20b")
    zero = ZeroInferenceEngine(cfg, ws)
    cap = zero.max_batch(562)
    b = 1
    while b <= cap:
        tput = zero.generation_throughput(prompt_len=512, gen_tokens=50, batch=b)
        rep = zero.forward_pass(batch=b, tokens_per_seq=512)
        rows.append(
            {
                "panel": "a",
                "config": f"zero-batch-{b}",
                "model": cfg.name,
                "batch": b,
                "tflops": rep.tflops_per_gpu,
                "tokens_per_s": tput,
            }
        )
        b *= 2

    # (b) across models on one A6000: GPU-only vs CPU-only vs ZeRO.
    for name in ("gpt-neox-20b", "gpt-50b", "gpt-87b", "lm-175b", "lm-530b"):
        mcfg = get_model(name)
        gpu_only = GPUOnlyBaseline(mcfg, ws)
        cpu_only = CPUOnlyBaseline(mcfg, ws)
        z = ZeroInferenceEngine(mcfg, ws)
        zrep = z.max_batch_pass(seq_len=2048)
        rows.append(
            {
                "panel": "b",
                "config": "comparison",
                "model": name,
                "gpu_only_runs": gpu_only.fits() and gpu_only.max_batch(2048) >= 1,
                "cpu_only_runs": cpu_only.fits(),
                "zero_tier": z.placement.value,
                "batch": zrep.batch,
                "tflops": zrep.tflops_per_gpu,
                "pct_peak": 100 * zrep.tflops_per_gpu * 1e12 / ws.gpu.fp16_flops,
            }
        )

    # (c) GPT-50B on 1..16 V100s.
    dgx2 = dgx2_v100(16)
    cfg = get_model("gpt-50b")
    base_tflops = None
    for n in (1, 2, 4, 8, 16):
        z = ZeroInferenceEngine(cfg, dgx2, num_gpus=n)
        rep = z.max_batch_pass(seq_len=2048)
        total = rep.tflops_per_gpu * n
        if base_tflops is None:
            base_tflops = total
        rows.append(
            {
                "panel": "c",
                "config": f"v100-x{n}",
                "model": cfg.name,
                "gpus": n,
                "batch": rep.batch,
                "tflops": rep.tflops_per_gpu,
                "total_tflops": total,
                "scaling_eff": total / (base_tflops * n),
            }
        )
    return ExperimentResult(
        exp_id="fig9",
        title="ZeRO-Inference: scale, throughput, scalability (Fig. 9)",
        columns=["panel", "config", "model", "batch", "tflops", "tokens_per_s",
                 "gpu_only_runs", "cpu_only_runs", "zero_tier", "pct_peak",
                 "gpus", "total_tflops", "scaling_eff"],
        rows=rows,
        notes=[
            "paper: 530B on one A6000 (25x over GPU-only's ~20B ceiling), "
            "84 TFLOPS = 54% of peak, near-linear scaling to 16 V100s at "
            "67 TFLOPS/GPU",
        ],
    )


def fig10a_kernel_breakdown() -> ExperimentResult:
    """Fig. 10a: GPT-2 kernel ablation — Megatron baseline, +Deep-Fusion,
    +SBI-GeMM, across batch sizes."""
    sweep = layer_latency_sweep(DENSE_ZOO["gpt2-1.5b"], A100_40GB,
                                batches=(1, 2, 4, 8, 16, 32))
    rows = []
    base = sweep["Megatron-FP16"]
    for config, series in sweep.items():
        for batch, t in series.items():
            rows.append(
                {
                    "config": config,
                    "batch": batch,
                    "latency_ms": t * 1e3,
                    "speedup_vs_baseline": base[batch] / t,
                }
            )
    return ExperimentResult(
        exp_id="fig10a",
        title="Kernel ablation on GPT-2 (Fig. 10a)",
        columns=["config", "batch", "latency_ms", "speedup_vs_baseline"],
        rows=rows,
        notes=["paper: deep-fusion dominates; custom GeMM adds gains at "
               "small batch only"],
    )


def fig10b_pipeline_ablation() -> ExperimentResult:
    """Fig. 10b: 530B generation-throughput ablation over the pipeline
    optimizations of Sec. IV (cumulative)."""
    cluster = dgx_a100_cluster(8)
    cfg = DENSE_ZOO["lm-530b"]
    prompt, gen = 512, 50
    rows = []

    def run(label, *, lockstep, hybrid, offload, comm_opt):
        model = DenseLatencyModel(
            cfg, cluster, tp=8, pp=5,
            lockstep_generation=lockstep,
            hybrid_prompt_factor=hybrid,
        )
        point = best_throughput(
            model, prompt_len=prompt, gen_tokens=gen,
            offload_activations=offload,
            offload_scheme="odd_even" if comm_opt else "naive",
        )
        rows.append({"config": label, "tokens_per_s": point.tokens_per_second,
                     "batch": point.batch})
        return point.tokens_per_second

    t0 = run("baseline pipeline (lockstep)", lockstep=True, hybrid=1,
             offload=False, comm_opt=False)
    run("+ dynamic token schedule", lockstep=False, hybrid=1,
        offload=False, comm_opt=False)
    run("+ hybrid scheduling", lockstep=False, hybrid=2,
        offload=False, comm_opt=False)
    run("+ activation offload (bigger batch)", lockstep=False, hybrid=2,
        offload=True, comm_opt=False)
    t4 = run("+ odd/even PCIe scheduling", lockstep=False, hybrid=2,
             offload=True, comm_opt=True)
    for r in rows:
        r["vs_baseline"] = r["tokens_per_s"] / t0
    return ExperimentResult(
        exp_id="fig10b",
        title="530B pipeline optimization ablation (Fig. 10b)",
        columns=["config", "tokens_per_s", "batch", "vs_baseline"],
        rows=rows,
        notes=[
            f"cumulative gain {t4 / t0:.2f}x over the naive pipeline",
            "in this calibration the optimal batch stays within the "
            "GPU-resident KV ceiling: PCIe4 round-trips of offloaded cache "
            "cost more per extra sequence than the sequence earns, so the "
            "offload/odd-even bars are flat (see EXPERIMENTS.md)",
        ],
    )


def fig10c_prefetch() -> ExperimentResult:
    """Fig. 10c: prefetching impact on ZeRO-Inference (V100), batch sweep
    over prompt-shaped passes (seq 2048, the Sec. VI workload)."""
    cluster = dgx2_v100(1)
    cfg = get_model("gpt-neox-20b")
    rows = []
    for batch in (1, 2, 4, 8, 16, 32):
        times = {}
        for depth in (0, 1):
            eng = ZeroInferenceEngine(cfg, cluster, prefetch_depth=depth)
            rep = eng.forward_pass(batch=batch, tokens_per_seq=2048)
            times[depth] = rep.time
        rows.append(
            {
                "batch": batch,
                "no_prefetch_ms": times[0] * 1e3,
                "prefetch_ms": times[1] * 1e3,
                "improvement": times[0] / times[1],
            }
        )
    return ExperimentResult(
        exp_id="fig10c",
        title="Prefetching impact on ZeRO-Inference (Fig. 10c)",
        columns=["batch", "no_prefetch_ms", "prefetch_ms", "improvement"],
        rows=rows,
        notes=["paper: prefetch helps at small batch; benefit diminishes as "
               "arithmetic intensity hides the fetch"],
    )


def fig11_moe_bandwidth(*, batch: int = 8) -> ExperimentResult:
    """Fig. 11: aggregate effective memory bandwidth of the 52B MoE model,
    8 to 128 GPUs, DeepSpeed vs baseline."""
    cfg = MOE_ZOO["1.3b-moe-128"]
    rows = []
    for gpus in (8, 16, 32, 64, 128):
        cluster = dgx_a100_cluster(max(1, gpus // 8))
        par = MoEParallelism(mp_degree=1, ep_degree=gpus, expert_slicing=1,
                             num_gpus=gpus)
        ds = MoELatencyModel(cfg, cluster, par, optimized=True)
        base = MoELatencyModel(cfg, cluster, par, optimized=False)
        rows.append(
            {
                "gpus": gpus,
                "ds_agg_tb_s": ds.aggregate_bandwidth(batch) / 1e12,
                "baseline_agg_tb_s": base.aggregate_bandwidth(batch) / 1e12,
                "ds_per_gpu_gb_s": ds.effective_bandwidth_per_gpu(batch) / 1e9,
                "baseline_per_gpu_gb_s": base.effective_bandwidth_per_gpu(batch)
                / 1e9,
            }
        )
    return ExperimentResult(
        exp_id="fig11",
        title="Aggregate memory-bandwidth scalability, 52B MoE (Fig. 11)",
        columns=["gpus", "ds_agg_tb_s", "baseline_agg_tb_s",
                 "ds_per_gpu_gb_s", "baseline_per_gpu_gb_s"],
        rows=rows,
        notes=["paper: DeepSpeed sustains much higher per-GPU bandwidth and "
               "keeps scaling to 128 GPUs; the baseline flattens"],
    )


def fig12_et_comparison() -> ExperimentResult:
    """Fig. 12: encoder-kernel comparison with E.T. (batch 1, seq 128)."""
    rows = []
    for model, vals in et_comparison().items():
        rows.append(
            {
                "model": model,
                "et_ms": vals["et"] * 1e3,
                "deepspeed_ms": vals["deepspeed"] * 1e3,
                "speedup": vals["speedup"],
            }
        )
    return ExperimentResult(
        exp_id="fig12",
        title="Comparison with E.T. kernels (Fig. 12)",
        columns=["model", "et_ms", "deepspeed_ms", "speedup"],
        rows=rows,
        notes=["paper: 1.7x on DistilBERT, 1.4x on BERT"],
    )


def fig13_hybrid_prompt(*, batch: int = 24) -> ExperimentResult:
    """Fig. 13: prompt-processing latency and TFLOPS, DeepSpeed (hybrid
    scheduling) vs FasterTransformer, 175B on 2x8 A100."""
    cluster = dgx_a100_cluster(2)
    cfg = DENSE_ZOO["lm-175b"]
    w = Workload(batch=batch, prompt_len=512, gen_tokens=1)
    rows = []

    def tflops(report):
        flops = batch * 512 * cfg.flops_per_token(kv_len=512)
        return flops / report.prompt_latency / 16 / 1e12

    # PP + MP configuration: TP8 x PP2.
    ds = DenseLatencyModel(cfg, cluster, tp=8, pp=2, hybrid_prompt_factor=4)
    ft = DenseLatencyModel(cfg, cluster, tp=8, pp=2,
                           profile=FASTER_TRANSFORMER_FP16,
                           lockstep_generation=True)
    rds, rft = ds.estimate(w), ft.estimate(w)
    rows.append(
        {
            "config": "PP+MP (tp8 x pp2)",
            "ft_prompt_ms": rft.prompt_latency * 1e3,
            "ds_prompt_ms": rds.prompt_latency * 1e3,
            "speedup": rft.prompt_latency / rds.prompt_latency,
            "ds_tflops_per_gpu": tflops(rds),
        }
    )

    # MP-only configuration: TP16 across both nodes; FT pays a flat
    # inter-node ring all-reduce per layer.
    ds = DenseLatencyModel(cfg, cluster, tp=16, pp=1)
    ft = DenseLatencyModel(cfg, cluster, tp=16, pp=1,
                           profile=FASTER_TRANSFORMER_FP16,
                           hierarchical_comm=False)
    rds, rft = ds.estimate(w), ft.estimate(w)
    rows.append(
        {
            "config": "MP-only (tp16)",
            "ft_prompt_ms": rft.prompt_latency * 1e3,
            "ds_prompt_ms": rds.prompt_latency * 1e3,
            "speedup": rft.prompt_latency / rds.prompt_latency,
            "ds_tflops_per_gpu": tflops(rds),
        }
    )
    return ExperimentResult(
        exp_id="fig13",
        title="Hybrid-scheduling prompt latency vs FT (Fig. 13)",
        columns=["config", "ft_prompt_ms", "ds_prompt_ms", "speedup",
                 "ds_tflops_per_gpu"],
        rows=rows,
        notes=["paper: 1.18x (PP+MP) and 3.06x (MP-only) at batch 24"],
    )


ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig6": fig6_dense_latency,
    "fig7": fig7_moe_latency,
    "fig8": fig8_throughput,
    "fig9": fig9_zero_inference,
    "fig10a": fig10a_kernel_breakdown,
    "fig10b": fig10b_pipeline_ablation,
    "fig10c": fig10c_prefetch,
    "fig11": fig11_moe_bandwidth,
    "fig12": fig12_et_comparison,
    "fig13": fig13_hybrid_prompt,
}
