"""Run all (or selected) experiment drivers and print their reports."""

from __future__ import annotations

import sys

from .ablations import ALL_ABLATIONS
from .figures import ALL_EXPERIMENTS
from .tables import ExperimentResult

__all__ = ["run", "main"]


REGISTRY = {**ALL_EXPERIMENTS, **ALL_ABLATIONS}


def run(exp_ids: list[str] | None = None) -> list[ExperimentResult]:
    """Execute the named experiments/ablations (default: the paper's
    tables and figures; ablations run when named or via "ablations")."""
    if exp_ids and exp_ids == ["ablations"]:
        ids = list(ALL_ABLATIONS)
    else:
        ids = exp_ids or list(ALL_EXPERIMENTS)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown experiment(s) {unknown}; known: {list(REGISTRY)}"
        )
    return [REGISTRY[i]() for i in ids]


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.bench [--json FILE] [--csv DIR] [exp_id ...]``.

    With no ids, runs every paper table/figure; ``ablations`` runs the
    ablation set. ``--json`` archives all results to one JSON file;
    ``--csv`` writes one CSV per experiment into a directory.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    json_path = csv_dir = None
    ids: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--json":
            json_path = next(it, None)
            if json_path is None:
                print("--json requires a file path", file=sys.stderr)
                return 2
        elif arg == "--csv":
            csv_dir = next(it, None)
            if csv_dir is None:
                print("--csv requires a directory", file=sys.stderr)
                return 2
        else:
            ids.append(arg)
    try:
        results = run(ids or None)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    for res in results:
        print(res.render())
        print()
    if json_path:
        import json

        with open(json_path, "w") as f:
            json.dump([r.to_json_dict() for r in results], f, indent=2)
    if csv_dir:
        import os

        os.makedirs(csv_dir, exist_ok=True)
        for res in results:
            with open(os.path.join(csv_dir, f"{res.exp_id}.csv"), "w") as f:
                f.write(res.to_csv())
    return 0
