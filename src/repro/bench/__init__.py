"""Benchmark harness: drivers regenerating every table and figure."""

from .ablations import ALL_ABLATIONS
from .compare import Delta, compare_results, format_deltas, load_archive
from .figures import ALL_EXPERIMENTS
from .runner import main, run
from .tables import ExperimentResult, format_table

__all__ = [
    "ALL_ABLATIONS",
    "ALL_EXPERIMENTS",
    "Delta",
    "ExperimentResult",
    "compare_results",
    "format_deltas",
    "format_table",
    "load_archive",
    "main",
    "run",
]
