"""FasterTransformer baseline (Sec. VII-A1, NVIDIA's FT library).

FT is the dense-model comparator throughout Figs. 6, 8 and 13. Its
mechanisms, relative to DeepSpeed Transformer:

* elementwise-only (epilogue) kernel fusion, cuBLAS GeMMs at every batch
  size, no CUDA graphs — the ``FASTER_TRANSFORMER_FP16`` profile;
* FP16 only for GPT-style decoders (its INT8 path covers encoders only,
  per the paper's footnote 1);
* training-style token-lockstep pipeline schedule, no hybrid prompt
  scheduling, no activation offloading (smaller feasible batches).
"""

from __future__ import annotations

from ..hardware.topology import ClusterSpec
from ..kernels.profiles import FASTER_TRANSFORMER_FP16
from ..model.config import ModelConfig
from ..engine.latency import DenseLatencyModel, LatencyReport, Workload
from ..engine.throughput import ThroughputPoint, best_throughput

__all__ = ["FasterTransformerBaseline"]


class FasterTransformerBaseline:
    """Latency/throughput of FasterTransformer on a dense deployment."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        *,
        tp: int = 1,
        pp: int = 1,
    ) -> None:
        self.model = DenseLatencyModel(
            config,
            cluster,
            tp=tp,
            pp=pp,
            profile=FASTER_TRANSFORMER_FP16,
            lockstep_generation=True,  # batch-granularity generation (Fig. 2a)
            hybrid_prompt_factor=1,
        )

    @property
    def config(self) -> ModelConfig:
        """Model under test."""
        return self.model.config

    def estimate(self, *, batch: int, prompt_len: int, gen_tokens: int) -> LatencyReport:
        """Latency report for one workload."""
        return self.model.estimate(
            Workload(batch=batch, prompt_len=prompt_len, gen_tokens=gen_tokens)
        )

    def best_throughput(self, *, prompt_len: int, gen_tokens: int) -> ThroughputPoint:
        """Best-batch sweep; FT cannot offload activations, so its batch
        ceiling is the unoffloaded one."""
        return best_throughput(
            self.model,
            prompt_len=prompt_len,
            gen_tokens=gen_tokens,
            offload_activations=False,
        )
