"""E.T. comparison (Fig. 12): encoder kernels on DistilBERT/BERT.

E.T. (Chen et al., SC'21) fuses self-attention and uses custom GeMMs with
pruning, but fuses fewer operators than Deep-Fusion and targets encoders
only (no KV cache, Sec. II-d). The paper measures batch 1, sequence 128
on an A100: DeepSpeed is 1.7x faster on DistilBERT and 1.4x on BERT —
the smaller the model, the more launch overhead and unfused traffic
matter.
"""

from __future__ import annotations

from ..hardware.specs import A100_40GB, GPUSpec
from ..kernels.costmodel import KernelCostModel
from ..kernels.graph import LayerShape
from ..kernels.profiles import DEEPSPEED_FP16, ET_FP16
from ..model.config import BERT_ZOO, ModelConfig

__all__ = ["encoder_latency", "et_comparison"]


def encoder_latency(
    config: ModelConfig,
    gpu: GPUSpec = A100_40GB,
    *,
    batch: int = 1,
    seq_len: int = 128,
    profile=DEEPSPEED_FP16,
) -> float:
    """Full-model encoder latency (no KV cache: every token recomputed).

    An encoder layer is the same op chain as a decoder layer with
    ``kv_len == seq_len`` and no causal cache reuse.
    """
    if config.decoder:
        raise ValueError(f"{config.name} is a decoder; Fig. 12 uses encoders")
    model = KernelCostModel(gpu, profile)
    shape = LayerShape(
        hidden=config.hidden,
        heads=config.heads,
        batch=batch,
        tokens_per_seq=seq_len,
        kv_len=seq_len,
        ffn_mult=config.ffn_mult,
    )
    return model.layer_cost(shape).total_time * config.layers


def et_comparison(
    gpu: GPUSpec = A100_40GB, *, models: tuple[str, ...] = ("distilbert", "bert-large")
) -> dict[str, dict[str, float]]:
    """Fig. 12's rows: per-model latency under E.T. and DeepSpeed kernels."""
    out: dict[str, dict[str, float]] = {}
    for name in models:
        cfg = BERT_ZOO[name]
        et = encoder_latency(cfg, gpu, profile=ET_FP16)
        ds = encoder_latency(cfg, gpu, profile=DEEPSPEED_FP16)
        out[name] = {"et": et, "deepspeed": ds, "speedup": et / ds}
    return out
