"""GPU-only inference baseline (Fig. 9a/9b comparisons).

All weights pinned in GPU memory — the conventional deployment ZeRO-
Inference is measured against. Its two structural limits (Sec. VI-A):

* **model scale**: the model must fit the GPU outright (one A6000 caps
  near the 20B class in FP16 — the denominator of the paper's 25x);
* **batch size**: whatever memory the weights leave over must hold the
  KV cache and activations, so big models run at tiny batches and poor
  efficiency.
"""

from __future__ import annotations

from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..kernels.costmodel import KernelCostModel
from ..kernels.graph import LayerShape
from ..kernels.profiles import DEEPSPEED_FP16, ImplementationProfile
from ..model.config import ModelConfig

__all__ = ["GPUOnlyBaseline"]


class GPUOnlyBaseline:
    """Single-node inference with GPU-resident weights."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        *,
        profile: ImplementationProfile = DEEPSPEED_FP16,
        dtype: DType = DType.FP16,
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.profile = profile
        self.dtype = dtype
        self.kernel_model = KernelCostModel(cluster.gpu, profile)

    @property
    def weight_bytes(self) -> float:
        """Resident model footprint."""
        return self.config.param_bytes(self.dtype)

    def fits(self, *, headroom: float = 0.90) -> bool:
        """Whether the weights alone fit one GPU."""
        return self.weight_bytes <= self.cluster.gpu.memory_bytes * headroom

    def max_batch(self, seq_len: int, *, headroom: float = 0.90) -> int:
        """Largest batch after the weights claim their share."""
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        free = self.cluster.gpu.memory_bytes * headroom - self.weight_bytes
        if free <= 0:
            return 0
        per_sample = seq_len * (
            self.config.kv_bytes_per_token(self.dtype)
            + 12 * self.config.hidden * self.dtype.itemsize
        )
        return int(free / per_sample)

    def forward_pass_time(self, *, batch: int, tokens_per_seq: int,
                          kv_len: int | None = None) -> float:
        """One forward pass with resident weights."""
        if not self.fits():
            raise ValueError(
                f"{self.config.name} ({self.weight_bytes / 1e9:.0f} GB) does "
                f"not fit a {self.cluster.gpu.name}"
            )
        kv_len = tokens_per_seq if kv_len is None else kv_len
        shape = LayerShape(
            hidden=self.config.hidden,
            heads=self.config.heads,
            batch=batch,
            tokens_per_seq=tokens_per_seq,
            kv_len=kv_len,
            dtype=self.dtype,
            ffn_mult=self.config.ffn_mult,
        )
        return self.kernel_model.layer_cost(shape).total_time * self.config.layers

    def generation_throughput(self, *, prompt_len: int, gen_tokens: int,
                              batch: int | None = None) -> float:
        """Generated tokens/s at the (default: maximum) batch."""
        if gen_tokens < 1:
            raise ValueError("gen_tokens must be >= 1")
        seq = prompt_len + gen_tokens
        if batch is None:
            batch = self.max_batch(seq)
        if batch < 1:
            raise ValueError(
                f"{self.config.name} leaves no KV room at seq {seq} on a "
                f"{self.cluster.gpu.name}"
            )
        prompt = self.forward_pass_time(batch=batch, tokens_per_seq=prompt_len)
        step = self.forward_pass_time(batch=batch, tokens_per_seq=1, kv_len=seq)
        return batch * gen_tokens / (prompt + gen_tokens * step)

    def max_batch_pass_tflops(self, *, seq_len: int = 2048) -> float:
        """Fig. 9b metric at the GPU-only batch ceiling."""
        batch = self.max_batch(seq_len)
        if batch < 1:
            raise ValueError("model + activations exceed GPU memory")
        t = self.forward_pass_time(batch=batch, tokens_per_seq=seq_len)
        flops = batch * seq_len * self.config.flops_per_token(kv_len=seq_len)
        return flops / t / 1e12
