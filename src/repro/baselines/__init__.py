"""Every comparator of Sec. VII, as code: FasterTransformer, the
distributed PyTorch MoE, Megatron kernels, E.T., CPU-only and GPU-only."""

from .cpu_only import CPUOnlyBaseline
from .et_kernels import encoder_latency, et_comparison
from .faster_transformer import FasterTransformerBaseline
from .gpu_only import GPUOnlyBaseline
from .megatron_kernels import kernel_ablation_configs, layer_latency_sweep
from .pytorch_moe import PyTorchMoEBaseline

__all__ = [
    "CPUOnlyBaseline",
    "FasterTransformerBaseline",
    "GPUOnlyBaseline",
    "PyTorchMoEBaseline",
    "encoder_latency",
    "et_comparison",
    "kernel_ablation_configs",
    "layer_latency_sweep",
]
