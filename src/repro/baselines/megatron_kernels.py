"""Megatron/PyTorch kernel baseline for the Fig. 10a ablation.

Fig. 10a compares, for GPT-2 across batch sizes: the Megatron (eager
PyTorch) kernel path, +Deep-Fusion, and +the custom (SBI) GeMM. This
module produces exactly those three configurations from one profile by
toggling mechanisms, so the attribution of each gap is explicit.
"""

from __future__ import annotations

from ..hardware.specs import GPUSpec
from ..kernels.costmodel import KernelCostModel, LayerCost
from ..kernels.fusion import FusionStrategy
from ..kernels.graph import LayerShape
from ..kernels.profiles import DEEPSPEED_FP16, MEGATRON_FP16
from ..model.config import ModelConfig

__all__ = ["kernel_ablation_configs", "layer_latency_sweep"]


def kernel_ablation_configs():
    """The three Fig. 10a configurations, least to most optimized."""
    baseline = MEGATRON_FP16
    fused = MEGATRON_FP16.with_(
        name="Megatron+DeepFusion",
        fusion=FusionStrategy.DEEP,
        dispatch_overhead=0.0,  # fused regions launch from the runtime
        nongemm_bw_eff=DEEPSPEED_FP16.nongemm_bw_eff,
        cuda_graph=True,
    )
    full = fused.with_(name="Megatron+DeepFusion+SBI-GeMM", sbi_gemm=True)
    return [baseline, fused, full]


def layer_latency_sweep(
    config: ModelConfig,
    gpu: GPUSpec,
    *,
    batches: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    kv_len: int = 128,
) -> dict[str, dict[int, float]]:
    """Per-token model latency (all layers) for each ablation config and
    batch size — the data behind Fig. 10a."""
    out: dict[str, dict[int, float]] = {}
    for profile in kernel_ablation_configs():
        model = KernelCostModel(gpu, profile)
        rows: dict[int, float] = {}
        for b in batches:
            shape = LayerShape(
                hidden=config.hidden,
                heads=config.heads,
                batch=b,
                tokens_per_seq=1,
                kv_len=kv_len,
                ffn_mult=config.ffn_mult,
            )
            cost: LayerCost = model.layer_cost(shape)
            rows[b] = cost.total_time * config.layers
        out[profile.name] = rows
    return out
