"""PyTorch-MoE baseline (Sec. VII-A1): "a full-featured distributed
PyTorch implementation that supports both tensor and expert parallelism".

Mechanism differences from DeepSpeed-MoE (Sec. VII-B2 lists exactly
these): sparse one-hot einsum gating, a framework loop-of-sends
all-to-all over all expert-parallel ranks, no expert-slicing, eager
kernels. The functional counterpart of its gating path is
:meth:`repro.model.moe.MoELayer.forward_sparse_einsum`.
"""

from __future__ import annotations

from ..hardware.topology import ClusterSpec
from ..engine.moe import MoELatencyModel, MoEStepBreakdown
from ..model.config import ModelConfig, MoEParallelism

__all__ = ["PyTorchMoEBaseline"]


class PyTorchMoEBaseline:
    """Latency of the distributed PyTorch MoE implementation."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        parallelism: MoEParallelism,
    ) -> None:
        self.model = MoELatencyModel(config, cluster, parallelism, optimized=False)

    def token_latency(self, batch: int = 8, kv_len: int = 228) -> float:
        """Per generated-token latency."""
        return self.model.token_latency(batch, kv_len)

    def step_breakdown(self, batch: int = 8, kv_len: int = 228) -> MoEStepBreakdown:
        """Component decomposition of one token step."""
        return self.model.token_step(batch, kv_len)

    def effective_bandwidth_per_gpu(self, batch: int = 8) -> float:
        """Fig. 11's metric for the baseline."""
        return self.model.effective_bandwidth_per_gpu(batch)
