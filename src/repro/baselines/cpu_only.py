"""CPU-only inference baseline (Fig. 9b comparisons).

A host-resident FP32 inference path: weights live in DRAM and the CPU
does the math. It caps at whatever fits DRAM in FP32 (the paper's "10x
larger than CPU-only": 530B vs the ~50B-class ceiling of a 256 GB-1.5 TB
host) and its throughput trails a GPU by the compute ratio — the paper
reports ZeRO-Inference at over 25x CPU-only throughput.
"""

from __future__ import annotations

from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig

__all__ = ["CPUOnlyBaseline"]

# Fraction of peak a tuned CPU GEMM library sustains end-to-end across a
# whole transformer stack (threading, NUMA and non-GEMM ops included).
_CPU_COMPUTE_EFF = 0.55


class CPUOnlyBaseline:
    """Throughput model of FP32 CPU inference out of DRAM."""

    def __init__(self, config: ModelConfig, cluster: ClusterSpec) -> None:
        self.config = config
        self.cluster = cluster
        self.host = cluster.node.host

    @property
    def weight_bytes(self) -> float:
        """FP32-resident model footprint."""
        return self.config.param_bytes(DType.FP32)

    def fits(self) -> bool:
        """Whether the model fits host DRAM at all."""
        return self.weight_bytes <= self.host.dram_bytes * 0.9

    def max_model_params(self) -> float:
        """Largest parameter count this host can serve (FP32)."""
        return self.host.dram_bytes * 0.9 / DType.FP32.itemsize

    def forward_pass_time(self, *, batch: int, seq_len: int) -> float:
        """One forward pass: weight streaming from DRAM overlapped with
        (i.e. bounded below by) the FP32 math."""
        if not self.fits():
            raise ValueError(
                f"{self.config.name} (FP32 {self.weight_bytes / 1e9:.0f} GB) "
                f"exceeds host DRAM"
            )
        if batch < 1 or seq_len < 1:
            raise ValueError("batch and seq_len must be >= 1")
        tokens = batch * seq_len
        flops = tokens * self.config.flops_per_token(kv_len=seq_len)
        compute = flops / (self.host.fp32_flops * _CPU_COMPUTE_EFF)
        stream = self.weight_bytes / self.host.dram_bw
        return max(compute, stream)

    def tflops(self, *, batch: int, seq_len: int) -> float:
        """Achieved compute throughput of the pass."""
        tokens = batch * seq_len
        flops = tokens * self.config.flops_per_token(kv_len=seq_len)
        return flops / self.forward_pass_time(batch=batch, seq_len=seq_len) / 1e12
