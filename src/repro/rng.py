"""Explicit randomness plumbing: one way to accept a seed anywhere.

Every stochastic entry point in this codebase (model weight init, trace
synthesis, sampling, routing) takes an explicit ``seed`` — RP003
(:mod:`repro.lint`) bans the process-global ``np.random.*`` state so
simulations replay bit-for-bit. :func:`as_generator` is the single
coercion point behind those signatures: callers may pass a plain ``int``
seed *or* an already-constructed :class:`numpy.random.Generator`, and
composite workflows can thread one generator end-to-end (trace
synthesis -> prompt synthesis -> sampling) instead of inventing seed
arithmetic at every hop::

    rng = np.random.default_rng(1234)
    trace = synthesize_trace(num_requests=64, arrival_rate=8.0, seed=rng)
    prompts = synthesize_prompts(trace, vocab=50_000, seed=rng)
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "as_generator"]

#: Anything a stochastic entry point accepts as its ``seed`` argument.
SeedLike = Union[int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`.

    A :class:`~numpy.random.Generator` passes through **by reference**
    (its state advances as the callee draws — that is the point: one
    stream, threaded end-to-end); anything else is handed to
    :func:`numpy.random.default_rng`, so equal ints keep yielding equal,
    reproducible streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
