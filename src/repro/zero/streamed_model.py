"""A runnable ZeRO-Inference transformer: layers streamed from a tier.

This binds the functional pieces together as library code: a
:class:`StreamedTransformer` keeps its layer weights in a
:class:`~repro.zero.tiers.TieredWeightStore` (DRAM or NVMe), holds only a
bounded window of layers "on GPU" at a time, and produces logits
identical to the fully-resident reference. It also supports the
*pin-weights-in-GPU* alternative Sec. VI-A discusses and rejects, so the
tradeoff (pinned layers avoid fetches but shrink the batch budget) can
be measured rather than asserted.
"""

from __future__ import annotations

import numpy as np

from ..hardware.topology import ClusterSpec
from ..kernels.functional import layer_norm
from ..model.dense import DenseTransformer
from ..model.kvcache import KVCache
from .tiers import Tier, TieredWeightStore

__all__ = ["StreamedTransformer"]


class StreamedTransformer:
    """Layer-streaming executor around a functional dense model."""

    def __init__(
        self,
        model: DenseTransformer,
        cluster: ClusterSpec,
        *,
        tier: Tier = Tier.DRAM,
        window: int = 2,
        pinned_layers: int = 0,
    ) -> None:
        """``window`` bounds concurrently GPU-resident streamed layers
        (prefetch_depth + 1 in the performance model); ``pinned_layers``
        keeps the first k layers permanently resident (the rejected
        design alternative)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        num_layers = model.config.layers
        if not 0 <= pinned_layers <= num_layers:
            raise ValueError("pinned_layers out of range")
        self.model = model
        self.window = window
        self.pinned = set(range(pinned_layers))
        self.store = TieredWeightStore(cluster)
        self._resident: list[int] = []  # streamed layers currently "on GPU"
        self.fetches = 0
        for i, lw in enumerate(model.layers):
            blob = np.concatenate(
                [getattr(lw, f).ravel() for f in lw.__dataclass_fields__]
            )
            self.store.put(i, blob, Tier.GPU if i in self.pinned else tier)

    # -- residency management ------------------------------------------------

    def _ensure_resident(self, layer: int) -> None:
        """Fetch ``layer`` into the window, evicting FIFO when full."""
        if layer in self.pinned or layer in self._resident:
            return
        data = self.store.fetch(layer)
        expected = self.model.layers[layer].num_params
        if data.size != expected:
            raise RuntimeError(
                f"layer {layer} fetched {data.size} params, expected {expected}"
            )
        self.fetches += 1
        self._resident.append(layer)
        while len(self._resident) > self.window:
            self._resident.pop(0)

    @property
    def resident_layers(self) -> list[int]:
        """Streamed layers currently held (pinned layers excluded)."""
        return list(self._resident)

    # -- decoder-facing surface ------------------------------------------
    # RaggedDecoder / GenerationSession drive any model exposing config,
    # embeddings, final norm, mlp_block and a per-layer weight accessor;
    # delegating here lets the batched serving runtime execute directly
    # over streamed weights, with residency enforced per layer touch.

    @property
    def config(self):
        """The wrapped model's configuration."""
        return self.model.config

    @property
    def wte(self):
        """Token embedding (resident; only layer blocks stream)."""
        return self.model.wte

    @property
    def wpe(self):
        """Position embedding (resident)."""
        return self.model.wpe

    @property
    def lnf_g(self):
        return self.model.lnf_g

    @property
    def lnf_b(self):
        return self.model.lnf_b

    def layer_weights(self, layer: int):
        """Fetch ``layer`` into the residency window and return its
        weights — the accessor the ragged decoder calls per layer."""
        self._ensure_resident(layer)
        return self.model.layers[layer]

    def mlp_block(self, x, lw, layer_idx):
        """Delegate to the wrapped model's MLP block."""
        return self.model.mlp_block(x, lw, layer_idx)

    # -- execution -------------------------------------------------------

    def forward(self, token_ids: np.ndarray, cache: KVCache | None = None) -> np.ndarray:
        """Logits, computed layer by layer under the residency window."""
        token_ids = np.atleast_2d(token_ids)
        pos0 = cache.seq_len(0) if cache is not None else 0
        x = self.model.wte[token_ids] + self.model.wpe[
            pos0 : pos0 + token_ids.shape[1]
        ]
        for i, lw in enumerate(self.model.layers):
            self._ensure_resident(i)
            x = self.model.attention_block(x, lw, i, cache)
            x = self.model.mlp_block(x, lw, i)
        x = layer_norm(x, self.model.lnf_g, self.model.lnf_b)
        return x @ self.model.wte.T

    def generate(self, prompt_ids: np.ndarray, num_tokens: int) -> np.ndarray:
        """Greedy decoding under layer streaming."""
        prompt_ids = np.atleast_2d(prompt_ids)
        out = prompt_ids.copy()
        cache = KVCache(self.model.config.layers)
        step = prompt_ids
        for _ in range(num_tokens):
            logits = self.forward(step, cache)
            nxt = logits[:, -1].argmax(axis=-1)[:, None]
            out = np.concatenate([out, nxt], axis=1)
            step = nxt
        return out

    # -- accounting ------------------------------------------------------

    @property
    def modeled_fetch_time(self) -> float:
        """Total modeled PCIe/NVMe time spent on fetches so far."""
        return self.store.total_fetch_time

    def fetches_per_forward(self) -> int:
        """Streamed (non-pinned) layers fetched by one forward pass."""
        return self.model.config.layers - len(self.pinned)
