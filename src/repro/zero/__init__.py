"""ZeRO-Inference: heterogeneous GPU+CPU+NVMe inference (Sec. VI)."""

from .inference import ZeroInferenceEngine, ZeroPassReport
from .streamed_model import StreamedTransformer
from .streaming import StreamReport, simulate_layer_stream
from .tiers import FetchEvent, Tier, TieredWeightStore, placement_for

__all__ = [
    "FetchEvent",
    "StreamReport",
    "StreamedTransformer",
    "Tier",
    "TieredWeightStore",
    "ZeroInferenceEngine",
    "ZeroPassReport",
    "placement_for",
    "simulate_layer_stream",
]
