"""ZeRO-Inference engine: heterogeneous-memory inference (Sec. VI).

The design decision the paper motivates (Sec. VI-A): do *not* pin
weights in GPU memory — pin them in DRAM or NVMe and stream one or a few
layers at a time, spending the freed GPU memory on batch size. Large
batches push layer compute past layer fetch, so the PCIe stream hides
behind the math and per-GPU efficiency approaches compute-bound levels
(the paper reports 84 TFLOPS, 54% of an A6000's peak).

This engine does the memory arithmetic (max batch with weights resident
vs streamed), builds per-layer fetch and compute times, runs them through
the prefetch pipeline simulator, and reports throughput in both
tokens/s and TFLOPS — the three panels of Fig. 9 and the prefetch
ablation of Fig. 10c all read from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..kernels.costmodel import KernelCostModel
from ..kernels.graph import LayerShape
from ..kernels.profiles import DEEPSPEED_FP16, ImplementationProfile
from ..model.config import ModelConfig
from .streaming import StreamReport, simulate_layer_stream
from .tiers import Tier, placement_for

__all__ = ["ZeroPassReport", "ZeroInferenceEngine"]

# Calibrated pipeline inefficiency: buffer rotation synchronization,
# imperfect fetch/compute overlap at phase edges, and framework work that
# the idealized stream does not capture. Pinned so that compute-bound
# ZeRO-Inference lands at the paper's ~54% of peak (Fig. 9b/9c).
_PIPELINE_OVERHEAD = 1.45


@dataclass(frozen=True)
class ZeroPassReport:
    """One streamed forward pass at a given batch/sequence shape."""

    batch: int
    tokens: int
    stream: StreamReport
    flops: float
    num_gpus: int

    @property
    def time(self) -> float:
        """Wall time of the pass."""
        return self.stream.makespan

    @property
    def tflops_per_gpu(self) -> float:
        """Achieved compute throughput per GPU — Fig. 9b's metric."""
        if self.time <= 0:
            return 0.0
        return self.flops / self.time / self.num_gpus / 1e12


class ZeroInferenceEngine:
    """Plan and evaluate ZeRO-Inference for one model on one machine."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        *,
        num_gpus: int = 1,
        prefetch_depth: int = 1,
        profile: ImplementationProfile = DEEPSPEED_FP16,
        dtype: DType = DType.FP16,
    ) -> None:
        if num_gpus < 1 or num_gpus > cluster.num_gpus:
            raise ValueError(
                f"num_gpus must be in [1, {cluster.num_gpus}] for this cluster"
            )
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.config = config
        self.cluster = cluster
        self.num_gpus = num_gpus
        self.prefetch_depth = prefetch_depth
        self.profile = profile
        self.dtype = dtype
        self.kernel_model = KernelCostModel(cluster.gpu, profile)
        self.placement: Tier = placement_for(config.param_bytes(dtype), cluster)

    # -- memory arithmetic ---------------------------------------------------

    @property
    def layer_bytes(self) -> float:
        """One transformer layer's weights — the streaming unit."""
        return self.config.layer_weight_bytes(self.dtype)

    def _buffer_bytes(self) -> float:
        """GPU memory held by weight buffers (prefetch_depth + 1 slots)."""
        return (self.prefetch_depth + 1) * self.layer_bytes

    def per_sample_bytes(self, seq_len: int) -> float:
        """GPU bytes one sequence costs: its KV cache plus working
        activations (hidden + QKV + FFN intermediates per live layer)."""
        kv = seq_len * self.config.kv_bytes_per_token(self.dtype)
        work = seq_len * 12 * self.config.hidden * self.dtype.itemsize
        return kv + work

    def max_batch(self, seq_len: int, *, headroom: float = 0.90) -> int:
        """Largest batch the freed GPU memory sustains (Sec. VI-A: GPU
        memory buys batch, not pinned weights)."""
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        budget = (
            self.cluster.gpu.memory_bytes * headroom * self.num_gpus
            - self._buffer_bytes() * self.num_gpus
        )
        if budget <= 0:
            return 0
        return int(budget / self.per_sample_bytes(seq_len))

    # -- per-layer times -----------------------------------------------------

    def fetch_time_per_layer(self) -> float:
        """Time to stream one layer to the GPUs (partitioned fetch +
        intra-node all-gather when num_gpus > 1, Sec. VI-B)."""
        node = self.cluster.node
        nbytes = self.layer_bytes
        share = nbytes / self.num_gpus
        if self.placement is Tier.DRAM:
            t = node.pcie.latency + share / node.pcie.bandwidth
        else:
            nvme = node.nvme
            if nvme is None:
                raise RuntimeError("NVMe placement on a machine without NVMe")
            bw = min(nvme.read_bw / self.num_gpus, node.pcie.bandwidth)
            t = nvme.latency + share / bw
        if self.num_gpus > 1:
            intra = node.intra_link
            t += intra.latency + nbytes * (self.num_gpus - 1) / (
                self.num_gpus * intra.bandwidth
            )
        return t

    def compute_time_per_layer(self, batch: int, tokens_per_seq: int, kv_len: int) -> float:
        """One layer's kernel time for the given shape, with the pipeline
        overhead folded in."""
        shape = LayerShape(
            hidden=self.config.hidden,
            heads=self.config.heads,
            batch=batch,
            tokens_per_seq=tokens_per_seq,
            kv_len=kv_len,
            dtype=self.dtype,
            ffn_mult=self.config.ffn_mult,
        )
        base = self.kernel_model.layer_cost(shape).total_time
        return base * _PIPELINE_OVERHEAD / self.num_gpus

    # -- passes ---------------------------------------------------------------

    def forward_pass(
        self, *, batch: int, tokens_per_seq: int, kv_len: int | None = None
    ) -> ZeroPassReport:
        """Stream one forward pass through all layers."""
        if batch < 1 or tokens_per_seq < 1:
            raise ValueError("batch and tokens_per_seq must be >= 1")
        kv_len = tokens_per_seq if kv_len is None else kv_len
        stream = simulate_layer_stream(
            num_layers=self.config.layers,
            fetch_time_per_layer=self.fetch_time_per_layer(),
            compute_time_per_layer=self.compute_time_per_layer(
                batch, tokens_per_seq, kv_len
            ),
            prefetch_depth=self.prefetch_depth,
        )
        tokens = batch * tokens_per_seq
        flops = batch * tokens_per_seq * self.config.flops_per_token(kv_len=kv_len)
        return ZeroPassReport(
            batch=batch,
            tokens=tokens,
            stream=stream,
            flops=flops,
            num_gpus=self.num_gpus,
        )

    def max_batch_pass(self, *, seq_len: int = 2048) -> ZeroPassReport:
        """The Fig. 9b measurement: one token-producing pass at the
        largest feasible batch."""
        batch = self.max_batch(seq_len)
        if batch < 1:
            raise ValueError(
                f"{self.config.name} leaves no room for even batch 1 at "
                f"seq {seq_len}"
            )
        return self.forward_pass(batch=batch, tokens_per_seq=seq_len)

    def generation_throughput(
        self, *, prompt_len: int, gen_tokens: int, batch: int | None = None
    ) -> float:
        """Generated tokens/s for a prompt+generation workload."""
        if gen_tokens < 1:
            raise ValueError("gen_tokens must be >= 1")
        seq = prompt_len + gen_tokens
        if batch is None:
            batch = self.max_batch(seq)
        if batch < 1:
            raise ValueError("no feasible batch for this workload")
        prompt = self.forward_pass(
            batch=batch, tokens_per_seq=prompt_len, kv_len=prompt_len
        )
        step = self.forward_pass(batch=batch, tokens_per_seq=1, kv_len=seq)
        total = prompt.time + gen_tokens * step.time
        return batch * gen_tokens / total
