"""Layer streaming with prefetch: the ZeRO-Inference execution pipeline.

Sec. VI-B: while layer ``i`` computes, the prefetcher pulls layers
``i+1 .. i+depth`` over PCIe into spare GPU buffers. The pipeline is
simulated with the discrete-event engine: the PCIe link is an exclusive
resource, prefetch buffers a bounded slot pool, and compute a serial
stream — so the fetch/compute overlap, the prefetch-depth benefit
(Fig. 10c) and its diminishing returns at high arithmetic intensity all
emerge rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore import (
    Acquire,
    Event,
    Release,
    Simulator,
    SlotResource,
    Timeline,
    Timeout,
    Wait,
    transfer,
)
from ..simcore.resources import BandwidthLink

__all__ = ["StreamReport", "simulate_layer_stream"]


@dataclass(frozen=True)
class StreamReport:
    """Outcome of streaming one forward pass."""

    makespan: float
    compute_time: float
    fetch_time: float
    prefetch_depth: int
    timeline: Timeline

    @property
    def overlap_efficiency(self) -> float:
        """How close the pipeline gets to the max(compute, fetch) bound."""
        bound = max(self.compute_time, self.fetch_time)
        return bound / self.makespan if self.makespan > 0 else 0.0

    @property
    def compute_utilization(self) -> float:
        """Fraction of the makespan the GPU computes."""
        return self.compute_time / self.makespan if self.makespan > 0 else 0.0


def simulate_layer_stream(
    *,
    num_layers: int,
    fetch_time_per_layer: float,
    compute_time_per_layer: float,
    prefetch_depth: int = 1,
) -> StreamReport:
    """Simulate one forward pass of a layer-streamed model.

    ``prefetch_depth`` is the number of layers fetched *ahead* of the one
    computing (0 = fully synchronous fetch-then-compute). Buffer count is
    ``prefetch_depth + 1`` — the GPU-memory cost Sec. VI-B trades for
    throughput.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if prefetch_depth < 0:
        raise ValueError("prefetch_depth must be >= 0")
    if fetch_time_per_layer < 0 or compute_time_per_layer <= 0:
        raise ValueError("invalid per-layer times")

    sim = Simulator()
    timeline = Timeline()
    pcie = BandwidthLink(bandwidth=1.0, latency=0.0, name="pcie")
    buffers = SlotResource(prefetch_depth + 1, name="weight-buffers")
    fetched = [Event(f"layer-{i}-ready") for i in range(num_layers)]

    def fetcher():
        for i in range(num_layers):
            yield Acquire(buffers)  # a free weight buffer
            start = sim.now
            yield from transfer(pcie, fetch_time_per_layer)  # bw=1: time==bytes
            timeline.record("pcie", start, sim.now, f"fetch-{i}")
            sim.trigger(fetched[i])

    def computer():
        for i in range(num_layers):
            yield Wait(fetched[i])
            start = sim.now
            yield Timeout(compute_time_per_layer)
            timeline.record("gpu", start, sim.now, f"layer-{i}")
            yield Release(buffers)  # weights of layer i no longer needed

    sim.spawn(fetcher(), name="fetcher")
    sim.spawn(computer(), name="computer")
    makespan = sim.run()
    return StreamReport(
        makespan=makespan,
        compute_time=num_layers * compute_time_per_layer,
        fetch_time=num_layers * fetch_time_per_layer,
        prefetch_depth=prefetch_depth,
        timeline=timeline,
    )
