"""Heterogeneous memory tiers for ZeRO-Inference (Sec. VI-A).

ZeRO-Inference pins model weights in DRAM or NVMe and streams layers into
GPU memory on demand. :class:`TieredWeightStore` is the functional
substrate: it places per-layer weight blobs into capacity-checked tiers,
serves fetches (returning the actual bytes, so the functional engine can
run real models this way), and reports the modeled fetch time of each
access so the performance layer and the functional layer stay in sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..hardware.specs import LinkSpec, NVMeSpec
from ..hardware.topology import ClusterSpec

__all__ = ["Tier", "FetchEvent", "TieredWeightStore", "placement_for"]


class Tier(enum.Enum):
    """Where a layer's weights rest (Sec. VI-A design decision)."""

    GPU = "gpu"
    DRAM = "dram"
    NVME = "nvme"


@dataclass(frozen=True)
class FetchEvent:
    """Record of one layer fetch: where from, how many bytes, model time."""

    layer: int
    tier: Tier
    nbytes: float
    time: float


def placement_for(
    total_bytes: float, cluster: ClusterSpec, *, reserve_gpu: bool = True
) -> Tier:
    """ZeRO-Inference's placement rule: DRAM if the model fits there,
    otherwise NVMe (GPU memory is deliberately *not* used for pinning —
    it buys batch size instead, Sec. VI-A)."""
    host = cluster.node.host
    if total_bytes <= host.dram_bytes * 0.9:
        return Tier.DRAM
    nvme = cluster.node.nvme
    if nvme is not None and total_bytes <= nvme.capacity_bytes * 0.95:
        return Tier.NVME
    raise ValueError(
        f"model of {total_bytes / 1e9:.0f} GB fits neither DRAM "
        f"({host.dram_bytes / 1e9:.0f} GB) nor NVMe"
    )


class TieredWeightStore:
    """Per-layer weight blobs resting in a tier, streamed over PCIe."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._blobs: dict[int, tuple[Tier, np.ndarray]] = {}
        self._tier_usage: dict[Tier, float] = {t: 0.0 for t in Tier}
        self.fetch_log: list[FetchEvent] = []

    # -- placement ----------------------------------------------------------

    def _capacity(self, tier: Tier) -> float:
        node = self.cluster.node
        if tier is Tier.GPU:
            return node.gpu.memory_bytes
        if tier is Tier.DRAM:
            return node.host.dram_bytes
        if node.nvme is None:
            return 0.0
        return node.nvme.capacity_bytes

    def put(self, layer: int, data: np.ndarray, tier: Tier) -> None:
        """Place a layer's weights into ``tier`` (capacity checked)."""
        if layer in self._blobs:
            raise KeyError(f"layer {layer} already stored")
        nbytes = float(data.nbytes)
        if self._tier_usage[tier] + nbytes > self._capacity(tier):
            raise ValueError(
                f"tier {tier.value} over capacity storing layer {layer}"
            )
        self._blobs[layer] = (tier, data)
        self._tier_usage[tier] += nbytes

    def tier_of(self, layer: int) -> Tier:
        """Which tier holds ``layer``."""
        return self._blobs[layer][0]

    def usage(self, tier: Tier) -> float:
        """Bytes resident in ``tier``."""
        return self._tier_usage[tier]

    # -- fetch path ----------------------------------------------------------

    def fetch_time(self, layer: int, *, num_gpus: int = 1) -> float:
        """Modeled time to bring one layer into GPU memory.

        DRAM-resident layers stream at PCIe speed; NVMe-resident layers at
        the slower of NVMe read and PCIe. With ``num_gpus``, each GPU
        fetches a 1/N partition over its own PCIe lane and the shards
        all-gather over the (much faster) GPU fabric (Sec. VI-B).
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        tier, data = self._blobs[layer]
        nbytes = float(data.nbytes)
        node = self.cluster.node
        pcie: LinkSpec = node.pcie
        if tier is Tier.GPU:
            return 0.0
        share = nbytes / num_gpus
        if tier is Tier.DRAM:
            t = pcie.latency + share / pcie.bandwidth
        else:
            nvme: NVMeSpec = node.nvme
            if nvme is None:
                raise RuntimeError("cluster has no NVMe tier")
            bw = min(nvme.read_bw, pcie.bandwidth * num_gpus) / num_gpus
            t = nvme.latency + share / bw
        if num_gpus > 1:
            # Re-assemble partitions over the intra-node fabric.
            intra = node.intra_link
            t += intra.latency + nbytes * (num_gpus - 1) / num_gpus / intra.bandwidth
        return t

    def fetch(self, layer: int, *, num_gpus: int = 1) -> np.ndarray:
        """Return the layer's weights, logging the modeled fetch."""
        tier, data = self._blobs[layer]
        self.fetch_log.append(
            FetchEvent(
                layer=layer,
                tier=tier,
                nbytes=float(data.nbytes),
                time=self.fetch_time(layer, num_gpus=num_gpus),
            )
        )
        return data

    @property
    def total_fetch_time(self) -> float:
        """Sum of modeled fetch times so far (no overlap)."""
        return sum(e.time for e in self.fetch_log)
