"""Alpha-beta cost models for the collectives DeepSpeed Inference relies on.

Sec. IV-A uses NCCL all-reduce for tensor parallelism; Sec. IV-C uses
point-to-point sends between pipeline stages; Sec. V uses all-to-all for
expert parallelism and all-gather inside the PCC optimization. The cost
model is the standard alpha-beta (latency-bandwidth) formulation:

* ring all-reduce of ``n`` bytes over ``p`` ranks moves ``2 (p-1)/p * n``
  bytes through each rank's slowest link in ``2 (p-1)`` latency steps;
* ring all-gather / reduce-scatter are each half of that;
* all-to-all exchanges a distinct ``n/p`` block with every peer — its
  latency term grows linearly with ``p`` (the O(p) the paper's PCC
  optimization attacks, Sec. V-B).

All functions take *total payload bytes per rank* and return seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import LinkSpec

__all__ = [
    "CollectiveCost",
    "p2p_time",
    "broadcast_time",
    "allreduce_time",
    "allgather_time",
    "reduce_scatter_time",
    "alltoall_time",
    "bruck_alltoall_time",
    "naive_alltoall_time",
]


@dataclass(frozen=True)
class CollectiveCost:
    """Breakdown of a collective's modeled execution time."""

    latency_term: float
    bandwidth_term: float

    @property
    def total(self) -> float:
        """End-to-end time in seconds."""
        return self.latency_term + self.bandwidth_term


def _check(nbytes: float, ranks: int) -> None:
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if ranks < 1:
        raise ValueError("ranks must be >= 1")


def p2p_time(link: LinkSpec, nbytes: float) -> float:
    """Point-to-point send of ``nbytes`` (pipeline stage boundary)."""
    _check(nbytes, 1)
    return link.transfer_time(nbytes)


def broadcast_time(link: LinkSpec, nbytes: float, ranks: int) -> CollectiveCost:
    """Binomial-tree broadcast: ceil(log2 p) staged sends."""
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    steps = (ranks - 1).bit_length()
    return CollectiveCost(steps * link.latency, steps * nbytes / link.bandwidth)


def allreduce_time(link: LinkSpec, nbytes: float, ranks: int) -> CollectiveCost:
    """Ring all-reduce (reduce-scatter + all-gather)."""
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    steps = 2 * (ranks - 1)
    moved = 2.0 * (ranks - 1) / ranks * nbytes
    return CollectiveCost(steps * link.latency, moved / link.bandwidth)


def allgather_time(link: LinkSpec, nbytes: float, ranks: int) -> CollectiveCost:
    """Ring all-gather; ``nbytes`` is the resulting full-tensor size."""
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    steps = ranks - 1
    moved = (ranks - 1) / ranks * nbytes
    return CollectiveCost(steps * link.latency, moved / link.bandwidth)


def reduce_scatter_time(link: LinkSpec, nbytes: float, ranks: int) -> CollectiveCost:
    """Ring reduce-scatter; ``nbytes`` is the pre-reduction full size."""
    # Same data-movement structure as all-gather, reversed.
    return allgather_time(link, nbytes, ranks)


def alltoall_time(
    link: LinkSpec, nbytes: float, ranks: int, *, latency_per_peer: float | None = None
) -> CollectiveCost:
    """Pairwise-exchange all-to-all of ``nbytes`` held per rank.

    Each rank exchanges a distinct ``nbytes / p`` block with each of the
    ``p - 1`` peers; with pairwise scheduling the latency term is
    ``(p - 1) * alpha`` — linear in ``p``, which is exactly the scaling
    bottleneck Sec. V-B identifies for expert parallelism at hundreds of
    GPUs.
    """
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    alpha = link.latency if latency_per_peer is None else latency_per_peer
    steps = ranks - 1
    moved = (ranks - 1) / ranks * nbytes
    return CollectiveCost(steps * alpha, moved / link.bandwidth)


def bruck_alltoall_time(
    link: LinkSpec, nbytes: float, ranks: int
) -> CollectiveCost:
    """Bruck's log-step all-to-all.

    ``ceil(log2 p)`` rounds, each moving half the payload — latency
    O(log p) instead of O(p), at the cost of ~log2(p)/2 x the bandwidth
    volume. The classic tradeoff: wins for small messages at scale,
    loses to pairwise exchange once the bandwidth term dominates
    (cf. the PCC discussion of Sec. V-B, which attacks the same latency
    term structurally instead of algorithmically).
    """
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    steps = (ranks - 1).bit_length()
    moved = steps * nbytes / 2.0
    return CollectiveCost(steps * link.latency, moved / link.bandwidth)


def naive_alltoall_time(
    link: LinkSpec, nbytes: float, ranks: int, *, overhead_per_peer: float
) -> CollectiveCost:
    """All-to-all issued as p-1 individual send/recv pairs from a framework
    loop (the PyTorch-MoE baseline of Sec. VII-A1), with per-peer launch and
    framework overhead on top of the wire alpha."""
    _check(nbytes, ranks)
    if ranks == 1:
        return CollectiveCost(0.0, 0.0)
    steps = ranks - 1
    moved = (ranks - 1) / ranks * nbytes
    return CollectiveCost(
        steps * (link.latency + overhead_per_peer), moved / link.bandwidth
    )
