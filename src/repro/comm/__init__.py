"""Communication substrate: collective cost models and a functional,
in-process MPI-like communicator for SPMD NumPy execution."""

from .functional import Communicator, World, spmd
from .hierarchical import CommGroup, group_allreduce_time, hierarchical_allreduce_time
from .pcc import PCCCost, baseline_alltoall, pcc_alltoall
from .primitives import (
    CollectiveCost,
    allgather_time,
    allreduce_time,
    alltoall_time,
    bruck_alltoall_time,
    broadcast_time,
    naive_alltoall_time,
    p2p_time,
    reduce_scatter_time,
)

__all__ = [
    "CollectiveCost",
    "CommGroup",
    "Communicator",
    "PCCCost",
    "World",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "bruck_alltoall_time",
    "baseline_alltoall",
    "broadcast_time",
    "group_allreduce_time",
    "hierarchical_allreduce_time",
    "naive_alltoall_time",
    "p2p_time",
    "pcc_alltoall",
    "reduce_scatter_time",
    "spmd",
]
