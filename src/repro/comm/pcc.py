"""PCC: Parallelism Coordinated Communication for MoE (Sec. V-B).

When tensor parallelism (degree ``L``) and expert parallelism coexist,
the all-reduce of tensor slicing leaves activations *replicated* across
the L tensor-parallel ranks. PCC exploits that replication: instead of an
all-to-all over all ``p`` expert-parallel GPUs (latency O(p)), each
tensor-slicing rank runs an all-to-all only within the ``p / L`` devices
that share its slicing rank. When the expert-parallel operator is
followed by a tensor-sliced operator, an intra-MP all-gather (O(L))
re-replicates the result:

* TP -> EP direction:  O(p)            ->  O(p / L)
* EP -> TP direction:  O(p)            ->  O(p / L) + O(L)

The paper's example: 128 GPUs with 8-way tensor slicing cuts the
all-to-all latency constant from ``128 C1 + C2`` to ``16 C1 + C2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.topology import ClusterSpec
from .primitives import CollectiveCost, allgather_time, alltoall_time

__all__ = ["PCCCost", "pcc_alltoall", "baseline_alltoall"]


@dataclass(frozen=True)
class PCCCost:
    """Cost breakdown of one expert dispatch/combine communication."""

    alltoall: CollectiveCost
    allgather: CollectiveCost
    local_transform: float

    @property
    def total(self) -> float:
        """End-to-end seconds."""
        return self.alltoall.total + self.allgather.total + self.local_transform


def _validate(total_ranks: int, tp_degree: int) -> None:
    if tp_degree < 1:
        raise ValueError("tp_degree must be >= 1")
    if total_ranks < 1:
        raise ValueError("total_ranks must be >= 1")
    if total_ranks % tp_degree:
        raise ValueError(
            f"tp_degree {tp_degree} must divide total ranks {total_ranks}"
        )


def baseline_alltoall(
    cluster: ClusterSpec, nbytes: float, total_ranks: int
) -> PCCCost:
    """Plain all-to-all over every expert-parallel GPU — the O(p) scheme."""
    _validate(total_ranks, 1)
    link = (
        cluster.node.intra_link
        if total_ranks <= cluster.node.gpus_per_node
        else cluster.inter_link
    )
    a2a = alltoall_time(link, nbytes, total_ranks)
    return PCCCost(a2a, CollectiveCost(0.0, 0.0), 0.0)


def pcc_alltoall(
    cluster: ClusterSpec,
    nbytes: float,
    total_ranks: int,
    tp_degree: int,
    *,
    direction: str = "tp_to_ep",
    transform_time: float = 2e-6,
) -> PCCCost:
    """PCC-optimized all-to-all.

    Parameters
    ----------
    nbytes:
        Per-rank payload (the replicated activation block).
    total_ranks:
        All GPUs participating in expert parallelism (``p``).
    tp_degree:
        Tensor-slicing degree (``L``); the all-to-all shrinks to
        ``p / L`` participants.
    direction:
        ``"tp_to_ep"`` (expert dispatch after a tensor-sliced operator; no
        all-gather needed) or ``"ep_to_tp"`` (combine before a
        tensor-sliced operator; requires the intra-MP all-gather).
    transform_time:
        Cost of the local split/transform kernels (steps 1 and 4 in
        Fig. 5); fused on-GPU data-layout work, effectively constant.
    """
    _validate(total_ranks, tp_degree)
    if direction not in ("tp_to_ep", "ep_to_tp"):
        raise ValueError(f"unknown direction {direction!r}")

    sub_ranks = total_ranks // tp_degree
    sub_link = (
        cluster.node.intra_link
        if sub_ranks <= cluster.node.gpus_per_node
        else cluster.inter_link
    )
    # Each subgroup member exchanges 1/L of the replicated payload.
    a2a = alltoall_time(sub_link, nbytes / tp_degree, sub_ranks)

    if direction == "ep_to_tp" and tp_degree > 1:
        # Re-replicate across the (intra-node) tensor-parallel group.
        ag = allgather_time(cluster.node.intra_link, nbytes, tp_degree)
    else:
        ag = CollectiveCost(0.0, 0.0)

    n_transforms = 2 if direction == "ep_to_tp" else 2
    return PCCCost(a2a, ag, n_transforms * transform_time)
