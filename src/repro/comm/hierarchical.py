"""Topology-aware collectives over NVLink islands joined by InfiniBand.

Modern clusters have a two-level network (Sec. I, Sec. II-c): fast
NVLink/NVSwitch inside a node, slower InfiniBand across nodes. NCCL
exploits this with hierarchical algorithms; the planner needs their cost
to decide where tensor parallelism stops being profitable (Sec. IV-A
confines TP to a node for exactly this reason).

The hierarchical all-reduce decomposes into: intra-node reduce-scatter,
inter-node all-reduce of the 1/g shard, intra-node all-gather.
"""

from __future__ import annotations

from ..hardware.topology import ClusterSpec
from .primitives import (
    CollectiveCost,
    allgather_time,
    allreduce_time,
    reduce_scatter_time,
)

__all__ = ["CommGroup", "hierarchical_allreduce_time", "group_allreduce_time"]


class CommGroup:
    """A set of global ranks participating in one collective.

    Splits the group into its intra-node and inter-node structure against
    a :class:`ClusterSpec` so cost models can pick per-level links.
    """

    def __init__(self, cluster: ClusterSpec, ranks: list[int]) -> None:
        if not ranks:
            raise ValueError("a communication group needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in group")
        self.cluster = cluster
        self.ranks = sorted(ranks)
        self.devices = [cluster.device(r) for r in self.ranks]
        nodes: dict[int, int] = {}
        for d in self.devices:
            nodes[d.node] = nodes.get(d.node, 0) + 1
        self._per_node = nodes

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.ranks)

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes the group spans."""
        return len(self._per_node)

    @property
    def is_single_node(self) -> bool:
        """True when the whole group shares NVLink."""
        return self.num_nodes == 1

    @property
    def is_balanced(self) -> bool:
        """True when every spanned node contributes the same rank count."""
        counts = set(self._per_node.values())
        return len(counts) == 1

    @property
    def ranks_per_node(self) -> int:
        """Group ranks per node (requires a balanced group)."""
        if not self.is_balanced:
            raise ValueError("group is not balanced across nodes")
        return next(iter(self._per_node.values()))


def hierarchical_allreduce_time(group: CommGroup, nbytes: float) -> CollectiveCost:
    """All-reduce of ``nbytes`` over ``group`` using the 2-level algorithm."""
    cluster = group.cluster
    if group.size == 1:
        return CollectiveCost(0.0, 0.0)
    if group.is_single_node:
        return allreduce_time(cluster.node.intra_link, nbytes, group.size)
    if not group.is_balanced:
        raise ValueError("hierarchical all-reduce requires a balanced group")
    g = group.ranks_per_node
    n_nodes = group.num_nodes
    intra = cluster.node.intra_link
    inter = cluster.inter_link
    rs = reduce_scatter_time(intra, nbytes, g)
    # Each rank owns a 1/g shard for the inter-node phase.
    ar = allreduce_time(inter, nbytes / g, n_nodes)
    ag = allgather_time(intra, nbytes, g)
    return CollectiveCost(
        rs.latency_term + ar.latency_term + ag.latency_term,
        rs.bandwidth_term + ar.bandwidth_term + ag.bandwidth_term,
    )


def group_allreduce_time(
    cluster: ClusterSpec, nbytes: float, ranks: list[int]
) -> float:
    """Convenience wrapper returning total seconds for an all-reduce."""
    return hierarchical_allreduce_time(CommGroup(cluster, ranks), nbytes).total
