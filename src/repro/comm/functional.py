"""An in-process, NumPy-backed communicator with MPI semantics.

The functional layer runs tensor-, expert- and pipeline-parallel inference
*for real* — each rank is a thread executing the same SPMD program on its
own weight shard, synchronizing through the collectives below. The API
mirrors mpi4py's buffer interface (allreduce / allgather / alltoall /
broadcast / send / recv / split), so the algorithms in
:mod:`repro.parallel` read exactly like their distributed counterparts,
and unit tests can verify their numerics without a GPU or an MPI launch.

Determinism: reductions combine contributions in rank order, so results
are bit-stable across runs.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["Communicator", "World", "spmd"]


class _CollectiveSlot:
    """One rendezvous: a contributions table plus a double barrier."""

    def __init__(self, size: int) -> None:
        self.contrib: dict[int, Any] = {}
        self.result: Any = None
        self.enter = threading.Barrier(size)
        self.exit = threading.Barrier(size)


class World:
    """Shared state for ``size`` ranks: collective slots and p2p queues."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._lock = threading.Lock()
        self._slots: dict[int, _CollectiveSlot] = {}
        self._counters: dict[int, int] = {}
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._splits: dict[tuple[int, Any], "World"] = {}

    def _slot(self, call_index: int) -> _CollectiveSlot:
        with self._lock:
            if call_index not in self._slots:
                self._slots[call_index] = _CollectiveSlot(self.size)
            return self._slots[call_index]

    def _retire(self, call_index: int) -> None:
        with self._lock:
            self._slots.pop(call_index, None)

    def _queue(self, src: int, dst: int, tag: int) -> queue.Queue:
        with self._lock:
            key = (src, dst, tag)
            if key not in self._queues:
                self._queues[key] = queue.Queue()
            return self._queues[key]

    def communicator(self, rank: int) -> "Communicator":
        """The endpoint object handed to rank ``rank``'s program."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return Communicator(self, rank)


class Communicator:
    """Rank-local endpoint exposing MPI-style collectives on numpy arrays."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self._calls = 0

    # -- internal rendezvous helper -----------------------------------------

    def _rendezvous(self, combine: Callable[[dict[int, Any]], Any], payload: Any) -> Any:
        idx = self._calls
        self._calls += 1
        slot = self.world._slot(idx)
        slot.contrib[self.rank] = payload
        arrived = slot.enter.wait()
        if arrived == 0:  # exactly one rank computes the combined result
            slot.result = combine(slot.contrib)
        slot.exit.wait()
        result = slot.result
        if arrived == 0:
            self.world._retire(idx)
        return result

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._rendezvous(lambda c: None, None)

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Element-wise reduction across ranks; every rank gets the result."""
        ops: dict[str, Callable] = {"sum": np.add, "max": np.maximum, "min": np.minimum}
        if op not in ops:
            raise ValueError(f"unsupported reduction {op!r}")
        fn = ops[op]

        def combine(contrib: dict[int, Any]) -> np.ndarray:
            out = np.array(contrib[0], copy=True)
            for r in range(1, self.size):
                fn(out, contrib[r], out=out)
            return out

        return self._rendezvous(combine, np.asarray(array)).copy()

    def allgather(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Concatenate each rank's array along ``axis``; all ranks get it."""

        def combine(contrib: dict[int, Any]) -> np.ndarray:
            return np.concatenate([contrib[r] for r in range(self.size)], axis=axis)

        return self._rendezvous(combine, np.asarray(array)).copy()

    def gather_objects(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather arbitrary objects to ``root`` (rank order)."""

        def combine(contrib: dict[int, Any]) -> list[Any]:
            return [contrib[r] for r in range(self.size)]

        result = self._rendezvous(combine, obj)
        return result if self.rank == root else None

    def broadcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        """Every rank receives root's array."""

        def combine(contrib: dict[int, Any]) -> Any:
            return contrib[root]

        out = self._rendezvous(combine, array)
        return np.array(out, copy=True)

    def alltoall(self, blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Exchange ``blocks[j]`` with rank ``j``; return received blocks
        ordered by source rank (MPI_Alltoallv semantics on ragged blocks)."""
        if len(blocks) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} blocks, got {len(blocks)}"
            )

        def combine(contrib: dict[int, Any]) -> dict[int, list]:
            return {
                dst: [contrib[src][dst] for src in range(self.size)]
                for dst in range(self.size)
            }

        table = self._rendezvous(combine, list(blocks))
        return [np.array(b, copy=True) for b in table[self.rank]]

    def reduce_scatter(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Sum across ranks, then return this rank's 1/size slice."""
        summed = self.allreduce(array, op="sum")
        parts = np.array_split(summed, self.size, axis=axis)
        return parts[self.rank].copy()

    # -- point to point --------------------------------------------------

    def send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Non-blocking-buffered send (copies the payload)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self.world._queue(self.rank, dest, tag).put(np.array(array, copy=True))

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> np.ndarray:
        """Blocking receive from ``source`` with a safety timeout."""
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        try:
            return self.world._queue(source, self.rank, tag).get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"rank {self.rank} timed out receiving from {source} (tag {tag})"
            ) from None

    # -- sub-communicators -------------------------------------------------

    def split(self, color: Any, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: ranks with equal ``color`` form a sub-world,
        ordered by ``key`` (default: global rank)."""
        key = self.rank if key is None else key

        def combine(contrib: dict[int, Any]) -> dict[Any, list[int]]:
            groups: dict[Any, list[tuple[int, int]]] = {}
            for r in range(self.size):
                c, k = contrib[r]
                groups.setdefault(c, []).append((k, r))
            return {
                c: [r for _, r in sorted(members)] for c, members in groups.items()
            }

        groups = self._rendezvous(combine, (color, key))
        members = groups[color]
        with self.world._lock:
            skey = tuple(members)  # one sub-world per member set
            if skey not in self.world._splits:
                self.world._splits[skey] = World(len(members))
            sub = self.world._splits[skey]
        return sub.communicator(members.index(self.rank))


def spmd(size: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return results
    in rank order. Exceptions on any rank propagate to the caller."""
    world = World(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(world.communicator(rank), *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append((rank, exc))
            # Unblock peers stuck in barriers so the join below returns.
            for slot in list(world._slots.values()):
                slot.enter.abort()
                slot.exit.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
