"""Fleet-level deployment tuning: replicas x TP x max_batch under a
GPU budget and a tail-latency SLA.

The paper tunes one instance (TP/PP/batch, Sec. I); an operator sizing
a fleet holds a *GPU budget* and must split it between scale-up (more
GPUs per replica via TP: lower per-token latency, fewer replicas) and
scale-out (more replicas: more aggregate slots, more failure
isolation). :func:`tune_fleet_deployment` searches that split by
replaying the reference trace through :func:`~repro.fleet.sim
.simulate_fleet` for every candidate — optionally under a
:class:`~repro.fleet.faults.FaultPlan`, so the returned deployment can
be required to hold its SLA *through* a replica loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.serving_sim import WorkloadTrace
from ..engine.throughput import candidate_batches
from ..engine.tuner import _serving_cost_candidates
from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig
from .faults import FaultPlan
from .sim import simulate_fleet

__all__ = ["FleetTuningResult", "tune_fleet_deployment"]


@dataclass(frozen=True)
class FleetTuningResult:
    """Winning fleet deployment for one trace."""

    replicas: int
    tp: int
    max_batch: int
    routing: str
    tokens_per_second: float
    ttft_p99: float
    latency_p99: float
    num_gpus: int
    replication: int = 1  # expert replication factor (MoE, skewed traces)

    @property
    def tokens_per_second_per_gpu(self) -> float:
        """Cost-normalized sustained throughput."""
        return self.tokens_per_second / self.num_gpus


def tune_fleet_deployment(
    config: ModelConfig,
    cluster: ClusterSpec,
    trace: WorkloadTrace,
    *,
    gpu_budget: int,
    ttft_sla: float | None = None,
    routing: str = "least_outstanding",
    policy: str = "fcfs",
    fault_plan: FaultPlan | None = None,
) -> FleetTuningResult:
    """Search replicas x TP x max_batch for the best fleet throughput
    whose P99 time-to-first-token meets ``ttft_sla`` (seconds; ``None``
    = no bound) within ``gpu_budget`` GPUs.

    Each candidate prices every replica with a
    :class:`~repro.engine.costs.StepCostModel` — dense models a
    ``tp``-way :class:`~repro.engine.costs.DenseStepCost` (replicas are
    TP-only islands — decode pipelining is not priced at serving
    granularity, matching
    :func:`~repro.engine.tuner.tune_serving_deployment`), MoE models a
    :class:`~repro.engine.costs.MoEStepCost` over a Table II-shaped
    MP x EP deployment — and replays ``trace`` through the fleet
    simulator under ``routing`` and the optional ``fault_plan``. Ties on
    throughput go to the cheaper deployment. Raises ``ValueError`` when
    nothing feasible meets the SLA.
    """
    if gpu_budget < 1:
        raise ValueError("gpu_budget must be >= 1")
    mean_prompt = max(1, round(float(np.mean(
        [r.prompt_len for r in trace.requests]))))
    mean_gen = max(1, round(float(np.mean(
        [r.gen_tokens for r in trace.requests]))))
    seq = max(r.prompt_len + r.gen_tokens for r in trace.requests)

    best: FleetTuningResult | None = None
    for tp, gpus_per_replica, cap, costs, replication in (
            _serving_cost_candidates(
                config, cluster, max_gpus=gpu_budget,
                representative_kv=mean_prompt + mean_gen // 2, seq=seq,
                expert_skew=trace.expert_skew)):
        batches = tuple(candidate_batches(cap))
        for replicas in range(1, gpu_budget // gpus_per_replica + 1):
            if fault_plan is not None:
                try:
                    # Out-of-pool faults or no-survivor windows (net of
                    # recoveries) make this fleet size infeasible.
                    fault_plan.validate_against(replicas)
                except ValueError:
                    continue
            for max_batch in batches:
                rep = simulate_fleet(
                    trace, num_replicas=replicas, costs=costs,
                    max_batch=max_batch, policy=policy,
                    routing=routing, fault_plan=fault_plan,
                )
                ttft = rep.ttft_percentile(trace, 99)
                if ttft_sla is not None and ttft > ttft_sla:
                    continue
                cand = FleetTuningResult(
                    replicas=replicas, tp=tp, max_batch=max_batch,
                    routing=routing,
                    tokens_per_second=rep.tokens_per_second,
                    ttft_p99=ttft,
                    latency_p99=rep.latency_percentile(trace, 99),
                    num_gpus=replicas * gpus_per_replica,
                    replication=replication,
                )
                if best is None or (
                    (cand.tokens_per_second, -cand.num_gpus)
                    > (best.tokens_per_second, -best.num_gpus)
                ):
                    best = cand
    if best is None:
        raise ValueError(
            f"no fleet deployment of {config.name} on {cluster.name} meets "
            f"ttft_sla={ttft_sla} within {gpu_budget} GPUs"
        )
    return best
