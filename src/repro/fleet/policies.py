"""Routing policies: which replica serves the next request.

The single-server scheduler (Sec. IV-C1) decides *when* a request runs;
at fleet scale the prior question is *where*. Each policy is a small
stateful object consulted once per arrival (and once more per requeue
after a fault) with a read-only :class:`FleetView` of the replica pool.
Policies never see clocks or tensors — only assigned-minus-completed
work — so the analytical and functional fleet backends route
identically by construction.

Shipped policies mirror the standard load-balancing ladder:

* ``round_robin`` — cycle over live replicas, load-blind;
* ``least_outstanding`` — argmin of outstanding token work (join the
  shortest queue);
* ``power_of_two`` — sample two live replicas, keep the less loaded
  (Mitzenmacher's d=2 choices: most of least-loaded's benefit at O(1)
  state reads);
* ``session_affinity`` — pin each session to one replica (warm
  prefix/KV locality), falling back to another policy for unaffiliated
  requests and re-pinning when the pinned replica dies.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from ..engine.serving_sim import Request
from ..rng import SeedLike, as_generator

__all__ = [
    "FleetView",
    "RoutingPolicy",
    "RoundRobin",
    "LeastOutstanding",
    "PowerOfTwoChoices",
    "SessionAffinity",
    "ROUTING_POLICIES",
    "resolve_routing_policy",
]


class FleetView(Protocol):
    """What a policy may observe: pool size, liveness, outstanding work.

    Views may optionally expose ``weight(replica) -> float`` (autoscale
    reweighting) and ``is_routable(replica) -> bool`` (liveness minus
    draining); policies read them through :func:`_weight_of` /
    :func:`_routable_of`, which default to 1.0 / ``is_alive`` so plain
    views keep working unchanged.
    """

    @property
    def num_replicas(self) -> int: ...

    def is_alive(self, replica: int) -> bool: ...

    def alive_replicas(self) -> Sequence[int]: ...

    def outstanding(self, replica: int) -> float: ...


def _weight_of(view: FleetView, replica: int) -> float:
    """A replica's routing weight; 1.0 on views without weights."""
    weight = getattr(view, "weight", None)
    return weight(replica) if weight is not None else 1.0


def _routable_of(view: FleetView, replica: int) -> bool:
    """Whether new work may go to ``replica``; liveness on plain views."""
    routable = getattr(view, "is_routable", None)
    return routable(replica) if routable is not None \
        else view.is_alive(replica)


class RoutingPolicy:
    """Base class: ``choose`` returns the replica index for one request."""

    name = "base"

    def choose(self, request: Request, view: FleetView) -> int:
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    """Cycle over replicas in index order, skipping dead ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: Request, view: FleetView) -> int:
        for _ in range(view.num_replicas):
            cand = self._next % view.num_replicas
            self._next = cand + 1
            if _routable_of(view, cand):
                return cand
        raise RuntimeError("no live replica to route to")


class LeastOutstanding(RoutingPolicy):
    """Join the replica with the least *weighted* outstanding token work
    (outstanding divided by routing weight — a half-weighted replica
    looks twice as loaded; ties go to the lowest index, so routing is
    deterministic). On views without weights every weight is 1.0 and
    ``x / 1.0 == x`` exactly, so plain fleets route bit-for-bit as
    before."""

    name = "least_outstanding"

    def choose(self, request: Request, view: FleetView) -> int:
        alive = view.alive_replicas()
        if not alive:
            raise RuntimeError("no live replica to route to")
        return min(alive,
                   key=lambda i: (view.outstanding(i) / _weight_of(view, i),
                                  i))


class PowerOfTwoChoices(RoutingPolicy):
    """Sample two distinct live replicas, keep the less loaded one.

    Seeded, so a fleet run is reproducible; with a single live replica
    it degenerates to that replica.
    """

    name = "power_of_two"

    def __init__(self, seed: SeedLike = 0) -> None:
        self._rng = as_generator(seed)

    def choose(self, request: Request, view: FleetView) -> int:
        alive = list(view.alive_replicas())
        if not alive:
            raise RuntimeError("no live replica to route to")
        if len(alive) == 1:
            return alive[0]
        a, b = self._rng.choice(len(alive), size=2, replace=False)
        a, b = alive[int(a)], alive[int(b)]
        return min((a, b),
                   key=lambda i: (view.outstanding(i) / _weight_of(view, i),
                                  i))


class SessionAffinity(RoutingPolicy):
    """Pin each session to one replica; fall back for the rest.

    The first request of a session is placed by ``fallback`` (default
    :class:`LeastOutstanding`) and later ones follow it — the placement
    a prefix-cache or conversation-KV reuse scheme wants. A dead pinned
    replica triggers a re-pin through the fallback.
    """

    name = "session_affinity"

    def __init__(self, fallback: RoutingPolicy | None = None) -> None:
        self.fallback = fallback or LeastOutstanding()
        self._pins: dict[int, int] = {}

    def choose(self, request: Request, view: FleetView) -> int:
        if request.session is None:
            return self.fallback.choose(request, view)
        pinned = self._pins.get(request.session)
        if pinned is not None and _routable_of(view, pinned):
            return pinned
        target = self.fallback.choose(request, view)
        self._pins[request.session] = target
        return target

    @property
    def pins(self) -> dict[int, int]:
        """Current session -> replica pinning (a copy)."""
        return dict(self._pins)


ROUTING_POLICIES: dict[str, Callable[[], RoutingPolicy]] = {
    "round_robin": RoundRobin,
    "least_outstanding": LeastOutstanding,
    "power_of_two": PowerOfTwoChoices,
    "session_affinity": SessionAffinity,
}


def resolve_routing_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Turn a policy name into a fresh instance (instances pass through).

    Policies are stateful (round-robin cursor, affinity pins, RNG), so
    every fleet run must get its own instance — names make that the
    default path.
    """
    if isinstance(policy, RoutingPolicy):
        return policy
    if policy not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {policy!r}; choose from "
            f"{sorted(ROUTING_POLICIES)} or pass a RoutingPolicy instance"
        )
    return ROUTING_POLICIES[policy]()
