"""Fleet serving layer: many replicas behind a router.

The layer above the single-server runtime: a :class:`Router` spreads a
:class:`~repro.engine.serving_sim.WorkloadTrace` across N replicas
under pluggable routing policies, with scripted fault injection
(:class:`FaultPlan`), requeue-and-retry failover, fleet-wide reporting
(:class:`FleetReport`), and deployment tuning under a GPU budget
(:func:`tune_fleet_deployment`). Two backends share one control plane:
:func:`simulate_fleet` prices decisions with the latency model;
:func:`run_fleet_functional` executes them on real
:class:`~repro.engine.generation.GenerationSession` replicas with
exact-output guarantees.
"""

from .faults import FaultPlan, ReplicaFault
from .policies import (
    ROUTING_POLICIES,
    LeastOutstanding,
    PowerOfTwoChoices,
    RoundRobin,
    RoutingPolicy,
    SessionAffinity,
    resolve_routing_policy,
)
from .report import FleetReport, ReplicaStats
from .router import Router, RoutingDecision
from .sim import (
    FleetFunctionalResult,
    run_fleet_functional,
    simulate_fleet,
    synthesize_prompts,
)
from .tuning import FleetTuningResult, tune_fleet_deployment

__all__ = [
    "ROUTING_POLICIES",
    "FaultPlan",
    "FleetFunctionalResult",
    "FleetReport",
    "FleetTuningResult",
    "LeastOutstanding",
    "PowerOfTwoChoices",
    "ReplicaFault",
    "ReplicaStats",
    "RoundRobin",
    "Router",
    "RoutingDecision",
    "RoutingPolicy",
    "SessionAffinity",
    "resolve_routing_policy",
    "run_fleet_functional",
    "simulate_fleet",
    "synthesize_prompts",
    "tune_fleet_deployment",
]
