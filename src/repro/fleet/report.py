"""Fleet-level reporting: per-replica and fleet-wide serving numbers.

The single-server :class:`~repro.engine.serving_sim.ServingReport`
answers "can this deployment hold the SLA"; the fleet report answers
the capacity-planning questions above it: how is load spread, what did
a fault cost, where did the tail go. It aggregates one lane per replica
plus the router's decision log, and merges every replica timeline into
one multi-lane chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.scheduler import Scheduler
from ..engine.serving_sim import Request, WorkloadTrace
from ..simcore.trace import Timeline
from .router import RoutingDecision

__all__ = ["ReplicaStats", "FleetReport"]


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of the run."""

    replica: int
    alive: bool
    num_requests: int       # requests it completed
    tokens: int             # tokens of those completed requests
    tokens_discarded: int   # generated, then thrown away by a crash
    busy_time: float        # server-lane busy time (prefill + decode)


@dataclass(frozen=True)
class FleetReport:
    """Outcome of serving one trace on a replica fleet."""

    makespan: float
    finish_times: dict[int, float]        # request -> completion time
    first_token_times: dict[int, float]   # on the *serving* replica
    queue_delays: dict[int, float]        # original arrival -> final admit
    replica_of: dict[int, int]            # final serving replica
    retried: frozenset[int]               # requests re-placed after a fault
    total_tokens: int                     # tokens of completed requests
    tokens_discarded: int                 # crash-wasted tokens
    replica_stats: tuple[ReplicaStats, ...]
    routing: tuple[RoutingDecision, ...]
    crash_steps: dict[int, int] = field(default_factory=dict, compare=False)
    schedulers: tuple[Scheduler, ...] = field(default=(), compare=False)
    timeline: Timeline | None = field(default=None, compare=False)

    # -- per-request views ----------------------------------------------

    def latency(self, request: Request) -> float:
        """End-to-end latency from *original* arrival (retries included)."""
        return self.finish_times[request.request_id] - request.arrival

    def ttft(self, request: Request) -> float:
        """Time to the first token that survived into the final output —
        a retried request's clock keeps running through the crash."""
        return self.first_token_times[request.request_id] - request.arrival

    def _percentile(self, values: list[float], q: float) -> float:
        return float(np.percentile(np.array(values), q))

    def latency_percentile(self, trace: WorkloadTrace, q: float) -> float:
        """qth percentile of fleet-wide end-to-end latency."""
        return self._percentile([self.latency(r) for r in trace.requests], q)

    def ttft_percentile(self, trace: WorkloadTrace, q: float) -> float:
        """qth percentile of fleet-wide time to first (surviving) token."""
        return self._percentile([self.ttft(r) for r in trace.requests], q)

    # -- fleet aggregates -------------------------------------------------

    @property
    def num_completed(self) -> int:
        """Requests that finished somewhere in the fleet."""
        return len(self.finish_times)

    @property
    def tokens_per_second(self) -> float:
        """Sustained useful throughput (discarded tokens excluded)."""
        return self.total_tokens / self.makespan if self.makespan > 0 else 0.0

    @property
    def request_counts(self) -> tuple[int, ...]:
        """Completed-request count per replica (the load-shift signal)."""
        return tuple(s.num_requests for s in self.replica_stats)

    @property
    def num_replicas(self) -> int:
        """Size of the replica pool."""
        return len(self.replica_stats)

    def per_replica_ttft_percentile(self, trace: WorkloadTrace, q: float,
                                    replica: int) -> float:
        """qth TTFT percentile over the requests one replica completed."""
        vals = [self.ttft(r) for r in trace.requests
                if self.replica_of.get(r.request_id) == replica]
        if not vals:
            raise ValueError(f"replica {replica} completed no requests")
        return self._percentile(vals, q)
