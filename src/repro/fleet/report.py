"""Fleet-level reporting: per-replica and fleet-wide serving numbers.

The single-server :class:`~repro.engine.serving_sim.ServingReport`
answers "can this deployment hold the SLA"; the fleet report answers
the capacity-planning questions above it: how is load spread, what did
a fault cost, where did the tail go. It aggregates one lane per replica
plus the router's decision log, and merges every replica timeline into
one multi-lane chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..autoscale.actions import AutoscaleEvent
from ..autoscale.signals import FleetSignals
from ..engine.report_stats import ReportStats
from ..engine.scheduler import Scheduler
from ..engine.serving_sim import WorkloadTrace
from ..simcore.trace import Timeline
from .router import RoutingDecision

__all__ = ["ReplicaStats", "FleetReport"]


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of the run.

    ``join_time``/``retire_time`` bound the replica's life inside the
    run: the initial pool joins at 0.0 and a replica that served to the
    end has ``retire_time=None``; autoscaled replicas may join late
    (after their cold start) or retire early (drained by a scale-in or
    a drain-and-replace, flagged by ``draining``).
    """

    replica: int
    alive: bool
    num_requests: int       # requests it completed
    tokens: int             # tokens of those completed requests
    tokens_discarded: int   # generated, then thrown away by a crash
    busy_time: float        # server-lane busy time (prefill + decode)
    join_time: float = 0.0
    retire_time: float | None = None
    draining: bool = False


@dataclass(frozen=True)
class FleetReport(ReportStats):
    """Outcome of serving one trace on a replica fleet.

    Per-request views (``latency``, ``ttft``) and fleet-wide percentiles
    / throughput come from :class:`~repro.engine.report_stats
    .ReportStats`, shared with the single-server report: latency runs
    from each request's *original* arrival (retries included), TTFT to
    the first token that survived into the final output — a retried
    request's clock keeps running through the crash — and
    ``tokens_per_second`` counts only kept (non-discarded) tokens.
    """

    makespan: float
    finish_times: dict[int, float]        # request -> completion time
    first_token_times: dict[int, float]   # on the *serving* replica
    queue_delays: dict[int, float]        # original arrival -> final admit
    replica_of: dict[int, int]            # final serving replica
    retried: frozenset[int]               # requests re-placed after a fault
    total_tokens: int                     # tokens of completed requests
    tokens_discarded: int                 # crash-wasted tokens
    replica_stats: tuple[ReplicaStats, ...]
    routing: tuple[RoutingDecision, ...]
    # KV accounting summed over every replica (past incarnations
    # included); ``peak_kv_blocks`` sums per-replica peaks — each
    # replica's pool is its own hardware, so the sum is the fleet's
    # provisioning requirement. ``kv_dedup_ratio`` (from ReportStats)
    # derives from allocated/saved.
    prefix_hits: int = 0
    prefix_hit_tokens: int = 0
    kv_blocks_allocated: int = 0
    kv_blocks_saved: int = 0
    peak_kv_blocks: int = 0
    crash_steps: dict[int, int] = field(default_factory=dict, compare=False)
    schedulers: tuple[Scheduler, ...] = field(default=(), compare=False)
    timeline: Timeline | None = field(default=None, compare=False)
    autoscale_log: tuple[AutoscaleEvent, ...] = ()
    telemetry: tuple[FleetSignals, ...] = field(default=(), compare=False)
    replica_lifetimes: dict[int, tuple[tuple[float, float], ...]] = field(
        default_factory=dict)
    past_schedulers: dict[int, tuple[tuple[Scheduler, int | None], ...]] = \
        field(default_factory=dict, compare=False)

    # -- fleet aggregates -------------------------------------------------

    @property
    def num_completed(self) -> int:
        """Requests that finished somewhere in the fleet."""
        return len(self.finish_times)

    @property
    def request_counts(self) -> tuple[int, ...]:
        """Completed-request count per replica (the load-shift signal)."""
        return tuple(s.num_requests for s in self.replica_stats)

    @property
    def num_replicas(self) -> int:
        """Size of the replica pool (every replica that ever existed,
        including autoscaled joins and retirements)."""
        return len(self.replica_stats)

    @property
    def replica_seconds(self) -> float:
        """GPU cost of the run: total replica-up time summed over every
        lifetime segment (a replica down between crash and recover, or
        after retirement, accrues nothing)."""
        return sum(end - start
                   for segments in self.replica_lifetimes.values()
                   for start, end in segments)

    @property
    def avg_replicas(self) -> float:
        """Time-averaged replica count over the run — the number a
        fixed-size fleet must match for an equal-GPU-cost comparison.
        Falls back to the pool size when lifetimes were not recorded."""
        if not self.replica_lifetimes or self.makespan <= 0:
            return float(self.num_replicas)
        return self.replica_seconds / self.makespan

    def per_replica_ttft_percentile(self, trace: WorkloadTrace, q: float,
                                    replica: int) -> float:
        """qth TTFT percentile over the requests one replica completed."""
        vals = [self.ttft(r) for r in trace.requests
                if self.replica_of.get(r.request_id) == replica]
        if not vals:
            raise ValueError(f"replica {replica} completed no requests")
        return self._percentile(vals, q)
