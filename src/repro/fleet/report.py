"""Fleet-level reporting: per-replica and fleet-wide serving numbers.

The single-server :class:`~repro.engine.serving_sim.ServingReport`
answers "can this deployment hold the SLA"; the fleet report answers
the capacity-planning questions above it: how is load spread, what did
a fault cost, where did the tail go. It aggregates one lane per replica
plus the router's decision log, and merges every replica timeline into
one multi-lane chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.report_stats import ReportStats
from ..engine.scheduler import Scheduler
from ..engine.serving_sim import WorkloadTrace
from ..simcore.trace import Timeline
from .router import RoutingDecision

__all__ = ["ReplicaStats", "FleetReport"]


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of the run."""

    replica: int
    alive: bool
    num_requests: int       # requests it completed
    tokens: int             # tokens of those completed requests
    tokens_discarded: int   # generated, then thrown away by a crash
    busy_time: float        # server-lane busy time (prefill + decode)


@dataclass(frozen=True)
class FleetReport(ReportStats):
    """Outcome of serving one trace on a replica fleet.

    Per-request views (``latency``, ``ttft``) and fleet-wide percentiles
    / throughput come from :class:`~repro.engine.report_stats
    .ReportStats`, shared with the single-server report: latency runs
    from each request's *original* arrival (retries included), TTFT to
    the first token that survived into the final output — a retried
    request's clock keeps running through the crash — and
    ``tokens_per_second`` counts only kept (non-discarded) tokens.
    """

    makespan: float
    finish_times: dict[int, float]        # request -> completion time
    first_token_times: dict[int, float]   # on the *serving* replica
    queue_delays: dict[int, float]        # original arrival -> final admit
    replica_of: dict[int, int]            # final serving replica
    retried: frozenset[int]               # requests re-placed after a fault
    total_tokens: int                     # tokens of completed requests
    tokens_discarded: int                 # crash-wasted tokens
    replica_stats: tuple[ReplicaStats, ...]
    routing: tuple[RoutingDecision, ...]
    crash_steps: dict[int, int] = field(default_factory=dict, compare=False)
    schedulers: tuple[Scheduler, ...] = field(default=(), compare=False)
    timeline: Timeline | None = field(default=None, compare=False)

    # -- fleet aggregates -------------------------------------------------

    @property
    def num_completed(self) -> int:
        """Requests that finished somewhere in the fleet."""
        return len(self.finish_times)

    @property
    def request_counts(self) -> tuple[int, ...]:
        """Completed-request count per replica (the load-shift signal)."""
        return tuple(s.num_requests for s in self.replica_stats)

    @property
    def num_replicas(self) -> int:
        """Size of the replica pool."""
        return len(self.replica_stats)

    def per_replica_ttft_percentile(self, trace: WorkloadTrace, q: float,
                                    replica: int) -> float:
        """qth TTFT percentile over the requests one replica completed."""
        vals = [self.ttft(r) for r in trace.requests
                if self.replica_of.get(r.request_id) == replica]
        if not vals:
            raise ValueError(f"replica {replica} completed no requests")
        return self._percentile(vals, q)
