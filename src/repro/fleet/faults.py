"""Fault injection: replica crashes and slowdowns at trace time.

A fleet earns its keep when replicas fail. :class:`FaultPlan` scripts
deterministic faults against simulated time so a test (or a tuning run)
can ask: does the router requeue in-flight work, do survivors absorb the
load, how far does the tail degrade?

Two fault kinds:

* ``crash`` — from time ``t`` the router stops sending work; the
  replica finishes the scheduling round it already started (work in
  flight on an accelerator cannot be half-undone), then every queued
  and in-flight request requeues to the survivors *from scratch* —
  tokens the dead replica generated are discarded, never stitched into
  another replica's output;
* ``slowdown`` — from time ``t`` the replica's prompt and decode costs
  multiply by ``factor`` (a thermally throttled or noisy-neighbor
  node). Decisions are unaffected; pricing — and therefore load-aware
  routing — shifts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ReplicaFault", "FaultPlan"]

_KINDS = ("crash", "slowdown")


@dataclass(frozen=True)
class ReplicaFault:
    """One scripted fault: ``replica`` fails/slows at trace time ``time``."""

    replica: int
    time: float
    kind: str = "crash"
    factor: float = 1.0  # slowdown multiplier; ignored for crashes

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError("replica index must be >= 0")
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError("fault time must be finite and >= 0")
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind == "slowdown" and self.factor <= 1.0:
            raise ValueError("a slowdown needs factor > 1")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults applied to one fleet run."""

    faults: tuple[ReplicaFault, ...] = ()

    def __post_init__(self) -> None:
        for kind in _KINDS:
            seen: set[int] = set()
            for f in self.faults:
                if f.kind != kind:
                    continue
                if f.replica in seen:
                    raise ValueError(
                        f"replica {f.replica} has more than one {kind}"
                    )
                seen.add(f.replica)

    def validate_against(self, num_replicas: int) -> None:
        """Reject faults naming replicas outside the pool, and plans
        that crash every replica (no survivor could finish the trace)."""
        for f in self.faults:
            if f.replica >= num_replicas:
                raise ValueError(
                    f"fault targets replica {f.replica} but the fleet "
                    f"only has {num_replicas}"
                )
        if num_replicas and len(self.crashes()) >= num_replicas:
            raise ValueError("a FaultPlan may not crash every replica")

    def crashes(self) -> dict[int, float]:
        """Crash time per replica, for the replicas that crash."""
        return {f.replica: f.time for f in self.faults if f.kind == "crash"}

    def slowdowns(self) -> dict[int, tuple[float, float]]:
        """``replica -> (from_time, factor)`` for the slowed replicas."""
        return {f.replica: (f.time, f.factor)
                for f in self.faults if f.kind == "slowdown"}
