"""Fault injection: replica crashes, recoveries and slowdowns at trace time.

A fleet earns its keep when replicas fail. :class:`FaultPlan` scripts
deterministic faults against simulated time so a test (or a tuning run)
can ask: does the router requeue in-flight work, do survivors absorb the
load, how far does the tail degrade?

Three fault kinds:

* ``crash`` — from time ``t`` the router stops sending work; the
  replica finishes the scheduling round it already started (work in
  flight on an accelerator cannot be half-undone), then every queued
  and in-flight request requeues to the survivors *from scratch* —
  tokens the dead replica generated are discarded, never stitched into
  another replica's output;
* ``recover`` — a previously crashed replica rejoins at time ``t``
  with a *fresh* scheduler (the machine rebooted: nothing of the old
  incarnation's state survives) and becomes routable again. Crash and
  recover events for one replica must alternate in time, starting with
  a crash;
* ``slowdown`` — from time ``t`` the replica's prompt and decode costs
  multiply by ``factor`` (a thermally throttled or noisy-neighbor
  node). Decisions are unaffected; pricing — and therefore load-aware
  routing — shifts. A slowdown survives crash/recover cycles (the
  throttled part is the node, not the process).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ReplicaFault", "FaultPlan"]

_KINDS = ("crash", "recover", "slowdown")


@dataclass(frozen=True)
class ReplicaFault:
    """One scripted fault: ``replica`` fails/recovers/slows at trace
    time ``time``."""

    replica: int
    time: float
    kind: str = "crash"
    factor: float = 1.0  # slowdown multiplier; ignored for crash/recover

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError("replica index must be >= 0")
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError("fault time must be finite and >= 0")
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind == "slowdown" and self.factor <= 1.0:
            raise ValueError("a slowdown needs factor > 1")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults applied to one fleet run."""

    faults: tuple[ReplicaFault, ...] = ()

    def __post_init__(self) -> None:
        seen_slow: set[int] = set()
        by_replica: dict[int, list[ReplicaFault]] = {}
        for f in self.faults:
            if f.kind == "slowdown":
                if f.replica in seen_slow:
                    raise ValueError(
                        f"replica {f.replica} has more than one slowdown"
                    )
                seen_slow.add(f.replica)
            else:
                by_replica.setdefault(f.replica, []).append(f)
        # Crash/recover events per replica must alternate in time order,
        # starting with a crash (a machine can neither die twice in a
        # row nor rejoin without having died).
        for replica, events in by_replica.items():
            events.sort(key=lambda f: f.time)
            crashed = False
            for f in events:
                if f.kind == "crash":
                    if crashed:
                        raise ValueError(
                            f"replica {replica} has more than one crash "
                            f"without an intervening recover"
                        )
                    crashed = True
                else:  # recover
                    if not crashed:
                        raise ValueError(
                            f"replica {replica} recovers at t={f.time} "
                            f"without a preceding crash"
                        )
                    crashed = False

    def validate_against(self, num_replicas: int) -> None:
        """Reject faults naming replicas outside the pool, and plans
        that at some instant leave every replica crashed (no survivor
        could make progress). Recoveries count: a plan may crash every
        replica over its lifetime as long as the crashes are staggered
        so at least one replica is always up."""
        for f in self.faults:
            if f.replica >= num_replicas:
                raise ValueError(
                    f"fault targets replica {f.replica} but the fleet "
                    f"only has {num_replicas}"
                )
        if not num_replicas:
            return
        # Sweep the crash/recover timeline; at equal times recoveries
        # apply first (the rejoining replica can absorb the victims of a
        # simultaneous crash).
        events = sorted(
            ((f.time, 0 if f.kind == "recover" else 1, f.kind)
             for f in self.faults if f.kind in ("crash", "recover")),
        )
        down = 0
        for time, _, kind in events:
            down += 1 if kind == "crash" else -1
            if down >= num_replicas:
                raise ValueError(
                    f"a FaultPlan may not crash every replica: all "
                    f"{num_replicas} are down at t={time}"
                )

    def crashes(self) -> dict[int, float]:
        """First crash time per replica, for the replicas that crash."""
        out: dict[int, float] = {}
        for f in sorted(self.faults, key=lambda f: f.time):
            if f.kind == "crash" and f.replica not in out:
                out[f.replica] = f.time
        return out

    def crash_events(self) -> list[tuple[float, int]]:
        """Every crash as ``(time, replica)``, time-ordered."""
        return sorted((f.time, f.replica) for f in self.faults
                      if f.kind == "crash")

    def recover_events(self) -> list[tuple[float, int]]:
        """Every recovery as ``(time, replica)``, time-ordered."""
        return sorted((f.time, f.replica) for f in self.faults
                      if f.kind == "recover")

    def slowdowns(self) -> dict[int, tuple[float, float]]:
        """``replica -> (from_time, factor)`` for the slowed replicas."""
        return {f.replica: (f.time, f.factor)
                for f in self.faults if f.kind == "slowdown"}
