"""Fleet serving simulation: N replicas, one router, two backends.

Scale-out beyond one server multiplies the paper's single-instance
runtime (Secs. IV-V) behind a :class:`~repro.fleet.router.Router`. Each
replica is the *same* scheduler-backed continuous-batching server PR 1
built — here decomposed into atomic actions (admit-one-with-prompt-pass,
decode-one-iteration) so a global event loop can interleave many
replicas, arrivals, and scripted faults in start-time order.

Two backends, one control plane:

* :func:`simulate_fleet` — analytical: every replica prices the shared
  :class:`~repro.engine.scheduler.Scheduler`'s decisions with the
  latency model (exactly :func:`~repro.engine.serving_sim
  .simulate_serving`'s round structure; a one-replica fleet reproduces
  it bit-for-bit), producing a :class:`~repro.fleet.report.FleetReport`;
* :func:`run_fleet_functional` — functional: replays the analytical
  run's per-replica enqueue schedule into one real
  :class:`~repro.engine.generation.GenerationSession` per replica. The
  sessions' own schedulers re-make every admission/retirement decision
  and must coincide with the analytical ones (the fleet-level extension
  of PR 1's decision-equivalence guarantee), and every completed
  request's output is exactly ``model.generate`` on its prompt alone —
  including requests retried after a crash, which restart from scratch
  so no token from a dead replica survives.

Crash semantics: from the fault time the router stops routing to the
replica; it completes the scheduling round already in flight (work on an
accelerator cannot be half-undone), then dies at that step boundary and
all queued/in-flight requests requeue to the survivors with their
partial output discarded.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autoscale.actions import AutoscaleEvent
from ..autoscale.controller import Autoscaler, AutoscaleConfig, resolve_autoscaler
from ..autoscale.signals import FleetSignals, ReplicaSnapshot
from ..engine.costs import (
    BatchState,
    PromptShape,
    StepCostModel,
    resolve_step_costs,
)
from ..engine.generation import GenerationSession
from ..engine.scheduler import SchedRequest, Scheduler
from ..engine.serving_sim import (
    _RUN_CHUNK_STEPS,
    _KvTracker,
    Request,
    WorkloadTrace,
    _resolve_detail,
)
from ..rng import SeedLike, as_generator
from ..simcore.trace import Timeline
from .faults import FaultPlan
from .policies import RoutingPolicy
from .report import FleetReport, ReplicaStats
from .router import Router

__all__ = [
    "simulate_fleet",
    "run_fleet_functional",
    "FleetFunctionalResult",
    "synthesize_prompts",
]

_INF = math.inf


class _Replica:
    """One priced replica: simulate_serving's loop split into atomic
    actions so the fleet event loop can interleave replicas."""

    def __init__(self, index: int, *, max_batch: int, policy: str,
                 costs: StepCostModel, kv: _KvTracker, full: bool = True,
                 join_time: float = 0.0,
                 ttft_sink: list[tuple[float, float]] | None = None) -> None:
        self.index = index
        self.max_batch = max_batch
        self.policy = policy
        self.sched = Scheduler(max_batch, policy=policy)
        self.costs = costs
        # Per-replica KV pool accounting: parked session prefixes live
        # (and die) with this replica; counters span incarnations.
        self.kv = kv
        self.full = full  # full timelines vs summary (aggregated) spans
        self.now = join_time
        self.alive = True
        self.draining = False   # unroutable; finishes assigned work
        self.retired = False    # drained dry: gone for good
        self.join_time = join_time
        self.retire_time: float | None = None
        self.slow_from = _INF
        self.slow_factor = 1.0
        self.crash_step: int | None = None
        self._mid_round = False
        self.inbox: deque[tuple[float, Request]] = deque()  # delivered, unenqueued
        self.by_id: dict[int, Request] = {}
        # Incremental batch view: rid -> prompt + generated, admission
        # order (mirrors ``sched.active``) — no per-step tuple rebuilds.
        self._live_kv: dict[int, int] = {}
        self.admit_start: dict[int, float] = {}
        self.admit_at: dict[int, float] = {}
        self.first: dict[int, float] = {}
        self.finish: dict[int, float] = {}
        self.tokens = 0  # every token generated here, kept or discarded
        self.discarded = 0  # of those, thrown away by crashes so far
        self.timeline = Timeline()
        # Closed up-time segments + the currently-open segment start;
        # crash/retire close a segment, recover opens the next.
        self.segments: list[tuple[float, float]] = []
        self.seg_open: float | None = join_time
        # Past incarnations: (scheduler, crash step) per crash that was
        # followed by a recovery; the functional replay re-runs each.
        self.past: list[tuple[Scheduler, int | None]] = []
        # When set, the fleet's autoscaler collects (time, ttft) samples
        # here; None keeps the non-autoscaled path allocation-free.
        self.ttft_sink = ttft_sink

    # -- delivery --------------------------------------------------------

    def deliver(self, request: Request, t: float) -> None:
        """Hand over a routed request (enqueued before the next action)."""
        self.inbox.append((t, request))
        self.by_id[request.request_id] = request

    def _enqueue_arrived(self) -> None:
        while self.inbox and self.inbox[0][0] <= self.now:
            t, r = self.inbox.popleft()
            self.sched.enqueue(SchedRequest(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.gen_tokens,
                arrival=t,
                tenant=r.tenant,
            ))

    # -- the action interface --------------------------------------------

    def next_action_time(self) -> float:
        """Start time of this replica's next atomic action (inf if idle)."""
        if not self.alive or self.retired:
            return _INF
        if self.sched.num_active or self.sched.num_waiting:
            return self.now
        if self.inbox:
            return max(self.now, self.inbox[0][0])  # idle fast-forward
        return _INF

    def _cost(self, dt: float) -> float:
        return dt * (self.slow_factor if self.now >= self.slow_from else 1.0)

    def perform_action(self, on_complete, *, t_limit: float = _INF,
                       max_steps: int | None = None) -> str | None:
        """Run one atomic action: admit one request (paying its prompt
        pass) if possible, else decode a whole *stretch* of iterations.
        Returns what ran.

        ``t_limit`` bounds a decode stretch: only iterations *starting*
        strictly before it are committed (the fleet loop passes the next
        arrival/fault time, so a run splits exactly where a per-step
        replica would have yielded to the event loop). A replica's own
        inbox, the next length retirement, and a pending slowdown onset
        split the run the same way. ``max_steps`` caps the stretch
        (``1`` recovers per-step stepping, used by :meth:`crash`).
        """
        t = self.next_action_time()
        if t == _INF:
            return None
        self.now = max(self.now, t)
        self._enqueue_arrived()
        admitted = self.sched.admit(max_admit=1)
        if admitted:
            s = admitted[0]
            self._mid_round = True
            start = self.now
            eff = self.kv.admit(s.request_id)
            # ``_live_kv`` excludes the newcomer: inserted after pricing.
            # A prefix hit prices the unshared suffix only; ``eff == 0``
            # passes the scheduler's request through untouched.
            shape = (PromptShape(s.prompt_len, shared_prefix_len=eff)
                     if eff else s)
            self.now += self._cost(self.costs.prompt_cost(
                BatchState(tuple(self._live_kv.values())), shape))
            label = (f"prefill r{s.request_id} (+{eff} cached)" if eff
                     else f"prefill r{s.request_id}")
            self.timeline.record("server", start, self.now, label)
            if self.full:
                self.timeline.record(f"req-{s.request_id}", s.arrival, start,
                                     "queued")
            self.admit_start[s.request_id] = start
            self.admit_at[s.request_id] = self.now
            self.first[s.request_id] = self.now  # prompt pass yields token 1
            if self.ttft_sink is not None:
                # TTFT from the *original* arrival (a retried request's
                # clock ran through the crash), matching the report.
                self.ttft_sink.append(
                    (self.now,
                     self.now - self.by_id[s.request_id].arrival))
            self.tokens += 1
            if self.sched.record_token(s.request_id) is not None:
                self.finish[s.request_id] = self.now
                self.kv.retire(s.request_id)
                if self.full:
                    self.timeline.record(f"req-{s.request_id}", start,
                                         self.now, "decode")
                on_complete(self.index, self.by_id[s.request_id], self.now)
            else:
                self._live_kv[s.request_id] = s.prompt_len + 1
            return "admit"
        if self.sched.num_active:
            batch = self.sched.num_active
            # Iterations are committed only while every intermediate
            # step start stays strictly before each break time: the
            # event-loop limit, this replica's own next delivery, and —
            # while still at full speed — the slowdown onset.
            t_break = t_limit
            if self.inbox:
                t_break = min(t_break, self.inbox[0][0])
            if self.now < self.slow_from < t_break:
                t_break = self.slow_from
            horizon = self.sched.decode_horizon()
            if t_break != _INF:
                horizon = min(horizon, _RUN_CHUNK_STEPS)
            if max_steps is not None:
                horizon = min(horizon, max_steps)
            factor = self.slow_factor if self.now >= self.slow_from else 1.0
            raw = self.costs.decode_run_cost(
                BatchState(tuple(self._live_kv.values())), horizon)
            costs_arr = raw * factor  # x * 1.0 is exact, so always safe
            buf = np.empty(horizon + 1)
            buf[0] = self.now
            buf[1:] = costs_arr
            ends = np.cumsum(buf, out=buf)[1:]
            n = horizon
            if t_break != _INF:
                k = int(np.searchsorted(ends, t_break, side="left"))
                n = min(n, k + 1)
            ends_list = ends[:n].tolist()  # exact float64 -> float
            start = self.now
            self.now = ends_list[-1]
            retired = self.sched.record_tokens(n)
            self.tokens += n * batch
            if self.full:
                s_prev = start
                for e in ends_list:
                    self.timeline.record("server", s_prev, e,
                                         f"decode x{batch}")
                    s_prev = e
            else:
                self.timeline.record("server", start, self.now,
                                     f"decode x{batch} ({n} steps)")
            # Caches grow before retirement (a retiree participates in
            # every step of the stretch — it retires *at* the last one).
            self.kv.grow_all(n)
            for rid in retired:
                self.finish[rid] = self.now
                self.kv.retire(rid)
                if self.full:
                    self.timeline.record(f"req-{rid}", self.admit_at[rid],
                                         self.now, "decode")
                on_complete(self.index, self.by_id[rid], self.now)
                del self._live_kv[rid]
            for rid in self._live_kv:
                self._live_kv[rid] += n
            self._mid_round = False
            return "decode"
        return None

    # -- crash handling --------------------------------------------------

    def crash(self, t_fault: float, on_complete) -> list[tuple[float, Request]]:
        """Kill the replica: finish the in-flight round so it dies at a
        scheduler step boundary, then surrender every unfinished request
        (queued, in flight, or undelivered) for requeueing. Returns
        ``(requeue_time, request)`` victims in scheduler order."""
        while self._mid_round:
            # Per-step stepping: the in-flight round must finish exactly
            # where a per-step replica would, not run a whole stretch.
            if self.perform_action(on_complete, max_steps=1) is None:
                # The round cannot reach its decode (everything retired
                # in prompt passes); close the step so the event log
                # stays boundary-aligned for functional replay.
                self.sched.advance()
                self._mid_round = False
        self.alive = False
        self.crash_step = self.sched.step
        # The machine's KV pool dies with it: in-flight caches *and*
        # parked session prefixes are gone (counters survive — they
        # describe work that really happened here).
        self.kv.reset_live()
        t_requeue = max(self.now, t_fault)
        if self.seg_open is not None:
            self.segments.append((self.seg_open, t_requeue))
            self.seg_open = None
        victims: list[tuple[float, Request]] = []
        for rid in self.sched.active:          # in flight: output discarded
            victims.append((t_requeue, self.by_id[rid]))
        for rid in self.sched.waiting:         # queued, never started
            victims.append((t_requeue, self.by_id[rid]))
        for t, r in self.inbox:                # routed, never enqueued
            victims.append((max(t_requeue, t), r))
        self.inbox.clear()
        self.timeline.record_instant("server", t_requeue,
                                     f"crash ({len(victims)} requeued)")
        return victims

    def recover(self, t: float) -> None:
        """Reboot a crashed replica at time ``t``: a *fresh* scheduler
        (nothing of the dead incarnation's state survives the machine),
        empty batch, routable again. The old scheduler and its crash
        step are archived for the functional replay; completion records
        survive because those requests really did finish here."""
        if self.alive:
            raise RuntimeError(
                f"replica {self.index} is alive; only a crashed replica "
                f"can recover")
        self.past.append((self.sched, self.crash_step))
        self.sched = Scheduler(self.max_batch, policy=self.policy)
        self._live_kv.clear()
        self.alive = True
        self.crash_step = None
        self._mid_round = False
        self.now = max(self.now, t)
        self.seg_open = self.now
        self.timeline.record_instant("server", self.now, "recover")

    def maybe_retire(self, t: float) -> bool:
        """Retire a draining replica the moment it runs dry (no active,
        queued, or undelivered work). Returns whether it retired now."""
        if (self.draining and self.alive and not self.retired
                and not self.sched.num_active and not self.sched.num_waiting
                and not self.inbox):
            self.retired = True
            self.retire_time = max(self.now, t)
            if self.seg_open is not None:
                self.segments.append((self.seg_open, self.retire_time))
                self.seg_open = None
            self.timeline.record_instant("server", self.retire_time,
                                         "retired")
            return True
        return False

    # -- reporting -------------------------------------------------------

    def completed_tokens(self) -> int:
        """Tokens of the requests that finished here (kept tokens)."""
        return sum(self.by_id[rid].gen_tokens for rid in self.finish)

    def stats(self) -> ReplicaStats:
        return ReplicaStats(
            replica=self.index,
            alive=self.alive,
            num_requests=len(self.finish),
            tokens=self.completed_tokens(),
            tokens_discarded=self.tokens - self.completed_tokens(),
            busy_time=self.timeline.busy_time("server"),
            join_time=self.join_time,
            retire_time=self.retire_time,
            draining=self.draining,
        )

    def lifetime(self, makespan: float) -> tuple[tuple[float, float], ...]:
        """Up-time segments, the open one closed at ``makespan``."""
        segments = list(self.segments)
        if self.seg_open is not None:
            segments.append((self.seg_open, max(self.seg_open, makespan)))
        return tuple(segments)


def simulate_fleet(
    trace: WorkloadTrace,
    *,
    num_replicas: int,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
    routing: str | RoutingPolicy = "round_robin",
    fault_plan: FaultPlan | None = None,
    autoscaler: Autoscaler | AutoscaleConfig | None = None,
    kv_block_size: int = 16,
    kv_num_layers: int = 1,
    prefix_sharing: bool = True,
    detail: str = "auto",
    _max_run_steps: int | None = None,
) -> FleetReport:
    """Serve ``trace`` on ``num_replicas`` priced replicas behind a router.

    ``costs`` (any :class:`~repro.engine.costs.StepCostModel`; the
    legacy ``prompt_time``/``step_time`` closure pair is still accepted)
    plus ``max_batch``/``policy`` configure every replica exactly as
    :func:`~repro.engine.serving_sim.simulate_serving` would one server;
    ``routing`` names a :data:`~repro.fleet.policies.ROUTING_POLICIES`
    entry or is a policy instance; ``fault_plan`` scripts
    crashes/recoveries/slowdowns. Requests on a crashed replica requeue
    to the survivors and restart from scratch; the run fails only if
    every replica is simultaneously dead (which
    :meth:`FaultPlan.validate_against` rejects up front).

    Each replica carries its own analytical KV-block ledger (the
    single-server :class:`~repro.engine.serving_sim.simulate_serving`
    tracker, ``kv_block_size``/``kv_num_layers``-sized): with
    ``prefix_sharing`` on, a session-tagged retiree's cache parks on its
    replica and the session's next turn — if routed back there — forks
    it, pricing only the unshared prompt suffix. A crash wipes the
    replica's parked prefixes along with its in-flight caches. The
    report sums hit/allocation counters over every replica and sums
    per-replica peaks (each replica's pool is separate hardware).

    ``autoscaler`` — an :class:`~repro.autoscale.controller
    .AutoscaleConfig` or pre-built :class:`~repro.autoscale.controller
    .Autoscaler` — closes the loop: every ``epoch_s`` of simulated time
    the controller reads replica snapshots and fresh TTFT samples and
    its admitted actions apply as first-class events (scale-out replicas
    join after a cold start priced by the cost model's own prompt pass;
    scale-in and drain-and-replace drain a replica which retires when
    dry; reweights bias load-aware routing). ``None`` (default) runs the
    historical static fleet on the exact same code path.

    Replicas decode in event-compressed stretches (see
    :func:`~repro.engine.serving_sim.simulate_serving`); arrivals,
    faults, control epochs, replica joins, slowdown onsets and
    retirements split a stretch exactly where per-step stepping would
    act, so reports are bit-for-bit independent of the compression.
    ``detail`` has the single-server semantics (``"summary"`` skips
    per-request lanes and aggregates per-stretch server spans;
    ``"auto"`` switches on trace size). ``_max_run_steps`` caps every
    stretch (``1`` forces the per-step reference behavior; equivalence
    tests use it as the oracle).
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    full = _resolve_detail(detail, len(trace.requests))
    cost_model = resolve_step_costs(costs, prompt_time, step_time)
    plan = fault_plan or FaultPlan()
    plan.validate_against(num_replicas)
    scaler = resolve_autoscaler(autoscaler)
    ttft_sink: list[tuple[float, float]] | None = None
    if scaler is not None:
        scaler.bind(costs=cost_model, initial_replicas=num_replicas)
        ttft_sink = []

    def make_tracker() -> _KvTracker:
        return _KvTracker(trace.requests, block_size=kv_block_size,
                          num_layers=kv_num_layers,
                          prefix_sharing=prefix_sharing)

    replicas = [
        _Replica(i, max_batch=max_batch, policy=policy, costs=cost_model,
                 kv=make_tracker(), full=full, ttft_sink=ttft_sink)
        for i in range(num_replicas)
    ]
    for i, (t, factor) in plan.slowdowns().items():
        replicas[i].slow_from = t
        replicas[i].slow_factor = factor
    # Crash and recover events share one time-ordered stream; at equal
    # times a recovery applies first (the survivor-count argument of
    # FaultPlan.validate_against).
    fault_events = sorted(
        [(t, 0, i, "recover") for t, i in plan.recover_events()]
        + [(t, 1, i, "crash") for t, i in plan.crash_events()])
    fault_cursor = 0

    router = Router(num_replicas, policy=routing)
    replica_of: dict[int, int] = {}
    retried: set[int] = set()
    tokens_discarded = 0
    autoscale_log: list[AutoscaleEvent] = []
    telemetry: list[FleetSignals] = []
    # Pending scale-out boots: cold-start completion times, FIFO.
    joins: deque[float] = deque()
    epoch_s = scaler.config.epoch_s if scaler is not None else _INF
    next_epoch_s = epoch_s

    def on_complete(replica_index: int, request: Request, t: float) -> None:
        router.complete(request, replica_index)

    def snapshot(rep: _Replica) -> ReplicaSnapshot:
        return ReplicaSnapshot(
            index=rep.index,
            alive=rep.alive,
            draining=rep.draining,
            retired=rep.retired,
            queue_depth=rep.sched.num_waiting + len(rep.inbox),
            active_depth=rep.sched.num_active,
            outstanding_tokens=int(router.outstanding(rep.index)),
            done_tokens=rep.tokens,
            up_since_s=(rep.seg_open if rep.seg_open is not None
                        else rep.join_time),
        )

    def start_drain(index: int, t: float) -> None:
        rep = replicas[index]
        rep.draining = True
        router.mark_draining(index)
        rep.maybe_retire(t)

    # Arrival stream: the trace plus post-crash requeues, start-time
    # ordered (seq breaks ties in trace/requeue order).
    heap: list[tuple[float, int, Request, bool]] = [
        (r.arrival, seq, r, False) for seq, r in enumerate(trace.requests)
    ]
    heapq.heapify(heap)
    seq = len(trace.requests)

    while True:
        t_arr = heap[0][0] if heap else _INF
        t_act, act_i = _INF, -1
        for i, rep in enumerate(replicas):
            t = rep.next_action_time()
            if t < t_act:
                t_act, act_i = t, i
        t_fault = (fault_events[fault_cursor][0]
                   if fault_cursor < len(fault_events) else _INF)
        t_join = joins[0] if joins else _INF
        # Control epochs tick only while the run has work left — once
        # the heap is drained and every replica is idle there is nothing
        # to control and the loop must terminate.
        t_epoch = (next_epoch_s
                   if scaler is not None and (heap or t_act < _INF)
                   else _INF)
        t_split = min(t_arr, t_fault, t_join, t_epoch)
        if min(t_split, t_act) == _INF:
            break
        if t_fault <= t_split and t_fault <= t_act:
            t, _, target_i, kind = fault_events[fault_cursor]
            fault_cursor += 1
            target = replicas[target_i]
            if kind == "recover":
                target.recover(t)
                router.mark_recovered(target_i)
                if scaler is not None:
                    autoscale_log.append(AutoscaleEvent(
                        t, "recover", target_i, "fault plan recovery"))
                continue
            victims = target.crash(t, on_complete)
            router.mark_failed(target_i)
            delta = target.tokens - target.completed_tokens() \
                - target.discarded
            target.discarded += delta
            tokens_discarded += delta
            for t_req, r in victims:
                heapq.heappush(heap, (t_req, seq, r, True))
                seq += 1
            continue
        if t_join <= t_split and t_join <= t_act:
            t = joins.popleft()
            new_index = router.add_replica()
            rep = _Replica(new_index, max_batch=max_batch, policy=policy,
                           costs=cost_model, kv=make_tracker(), full=full,
                           join_time=t, ttft_sink=ttft_sink)
            replicas.append(rep)
            autoscale_log.append(AutoscaleEvent(
                t, "join", new_index, "cold start complete"))
            continue
        if t_epoch <= t_arr and t_epoch <= t_act:
            t = next_epoch_s
            next_epoch_s += epoch_s
            for rep in replicas:
                rep.maybe_retire(t)
            samples = list(ttft_sink)
            ttft_sink.clear()
            signals, actions = scaler.epoch(
                t, [snapshot(rep) for rep in replicas],
                pending_joins=len(joins), max_batch=max_batch,
                ttft_samples=samples)
            telemetry.append(signals)
            for action in actions:
                if action.kind == "scale_out":
                    joins.append(t + scaler.cold_start_s)
                elif action.kind == "replace":
                    rep = replicas[action.replica]
                    if rep.alive and not rep.retired:
                        start_drain(action.replica, t)
                    joins.append(t + scaler.cold_start_s)
                elif action.kind == "scale_in":
                    start_drain(action.replica, t)
                elif action.kind == "reweight":
                    router.set_weight(action.replica, action.weight)
                autoscale_log.append(AutoscaleEvent(
                    t, action.kind, action.replica, action.reason))
            continue
        if t_arr <= t_act:
            t, _, r, retry = heapq.heappop(heap)
            target_i = router.route(r, t, retry=retry)
            if retry:
                retried.add(r.request_id)
            replica_of[r.request_id] = target_i
            replicas[target_i].deliver(r, t)
            continue
        replicas[act_i].perform_action(on_complete,
                                       t_limit=t_split,
                                       max_steps=_max_run_steps)
        replicas[act_i].maybe_retire(replicas[act_i].now)

    # -- assemble the report --------------------------------------------
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    by_id = {r.request_id: r for r in trace.requests}
    for rid, i in replica_of.items():
        rep = replicas[i]
        if rid in rep.finish:  # the serving replica's record is final
            finish[rid] = rep.finish[rid]
            first[rid] = rep.first[rid]
            delays[rid] = rep.admit_start[rid] - by_id[rid].arrival

    timeline = Timeline()
    for i, rep in enumerate(replicas):
        timeline.merge(rep.timeline, prefix=f"replica{i}/")
    for d in router.decisions:
        timeline.record_instant(
            "router", d.time,
            f"r{d.request_id}->replica{d.replica}"
            + (" (retry)" if d.retry else ""))
    for ev in autoscale_log:
        timeline.record_instant(
            "autoscale", ev.time_s,
            ev.kind + (f" replica{ev.replica}"
                       if ev.replica is not None else "")
            + (f" ({ev.detail})" if ev.detail else ""))

    makespan = max(finish.values(), default=0.0)
    return FleetReport(
        makespan=makespan,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        replica_of=dict(replica_of),
        retried=frozenset(retried),
        total_tokens=sum(by_id[rid].gen_tokens for rid in finish),
        tokens_discarded=tokens_discarded,
        replica_stats=tuple(rep.stats() for rep in replicas),
        routing=tuple(router.decisions),
        prefix_hits=sum(rep.kv.hits for rep in replicas),
        prefix_hit_tokens=sum(rep.kv.hit_tokens for rep in replicas),
        kv_blocks_allocated=sum(rep.kv.allocated for rep in replicas),
        kv_blocks_saved=sum(rep.kv.saved_blocks for rep in replicas),
        peak_kv_blocks=sum(rep.kv.peak_blocks for rep in replicas),
        crash_steps={rep.index: rep.crash_step for rep in replicas
                     if rep.crash_step is not None},
        schedulers=tuple(rep.sched for rep in replicas),
        timeline=timeline,
        autoscale_log=tuple(autoscale_log),
        telemetry=tuple(telemetry),
        replica_lifetimes={rep.index: rep.lifetime(makespan)
                           for rep in replicas},
        past_schedulers={rep.index: tuple(rep.past)
                         for rep in replicas if rep.past},
    )


# -- functional mode ------------------------------------------------------


def synthesize_prompts(trace: WorkloadTrace, *, vocab: int,
                       seed: SeedLike = 0) -> dict[int, np.ndarray]:
    """Deterministic token prompts matching each request's prompt_len."""
    rng = as_generator(seed)
    return {r.request_id: rng.integers(0, vocab, size=r.prompt_len)
            for r in trace.requests}


@dataclass
class FleetFunctionalResult:
    """Outcome of a functional fleet run.

    ``past_sessions`` holds the replayed *pre-crash incarnations* of
    replicas that recovered mid-run (oldest first); requests that
    finished before the crash have their outputs there.
    """

    report: FleetReport                       # the shared control plane
    outputs: dict[int, np.ndarray]            # request -> final output ids
    sessions: tuple[GenerationSession, ...]   # one per replica (final)
    past_sessions: dict[int, tuple[GenerationSession, ...]] = field(
        default_factory=dict)


def _replay_replica(model, trace: WorkloadTrace,
                    prompts: dict[int, np.ndarray], sched: Scheduler, *,
                    max_batch: int, policy: str, crash_step: int | None,
                    kv_block_size: int = 16,
                    kv_pool_blocks: int | None = None,
                    prefix_sharing: bool = False) -> GenerationSession:
    """Re-enqueue one analytical replica's requests into a real session
    at the recorded scheduler steps; the session's own scheduler then
    re-makes every admission/retirement decision."""
    by_id = {r.request_id: r for r in trace.requests}
    enq: dict[int, list[int]] = {}
    for rid, step in sched.enqueue_steps.items():
        enq.setdefault(step, []).append(rid)
    # Within a step, preserve the analytical enqueue order.
    order = {e.request_id: k for k, e in enumerate(sched.events)
             if e.kind == "enqueue"}
    steps = sorted(enq)
    session = GenerationSession(model, max_concurrency=max_batch,
                                policy=policy, kv_block_size=kv_block_size,
                                kv_pool_blocks=kv_pool_blocks,
                                prefix_sharing=prefix_sharing)
    qi = 0
    while True:
        step = session.scheduler.step
        if crash_step is not None and step >= crash_step:
            break  # the replica died at this boundary; discard the rest
        while qi < len(steps) and steps[qi] <= step:
            for rid in sorted(enq[steps[qi]], key=order.__getitem__):
                r = by_id[rid]
                session.submit(prompts[rid],
                               max_new_tokens=r.gen_tokens,
                               request_id=rid, session=r.session,
                               tenant=r.tenant,
                               shared_prefix_len=r.shared_prefix_len)
            qi += 1
        if not (session.num_active or session.num_waiting or qi < len(steps)):
            break
        session.step()
    return session


def run_fleet_functional(
    model,
    trace: WorkloadTrace,
    *,
    num_replicas: int,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
    routing: str | RoutingPolicy = "round_robin",
    fault_plan: FaultPlan | None = None,
    autoscaler: Autoscaler | AutoscaleConfig | None = None,
    prompts: dict[int, np.ndarray] | None = None,
    seed: SeedLike = 0,
    kv_block_size: int = 16,
    kv_pool_blocks: int | None = None,
    prefix_sharing: bool = False,
    detail: str = "auto",
) -> FleetFunctionalResult:
    """Serve ``trace`` on real :class:`GenerationSession` replicas.

    The analytical backend runs first as the control plane (routing and
    per-replica enqueue schedules are placement decisions, shared by
    construction); each replica's schedule then replays into its own
    session, whose scheduler independently re-makes — and must agree on
    — every admission and retirement. Greedy decoding keeps the
    correctness contract checkable: every completed request's output
    equals solo ``model.generate``, and a request retried after a crash
    restarts from scratch (no dead replica's token can leak).

    ``prompts`` maps request id to token ids (lengths must match the
    trace); omitted, they are synthesized deterministically from
    ``seed``.

    ``prefix_sharing`` turns on copy-on-write prefix reuse in *both*
    backends at once: each functional session parks and forks real
    session caches (a prefix-hit request's leading tokens are adopted
    from the parked turn, so its exact-output contract is against the
    adopted prompt — see :meth:`GenerationSession.submit`), and the
    analytical control plane runs the matching block ledger
    (``kv_num_layers`` pinned to the model's layer count so the two
    backends' block counters are directly comparable). It defaults off,
    like :class:`GenerationSession` — the analytical-only
    :func:`simulate_fleet` defaults on because there accounting is free
    and changes no behavior.
    """
    report = simulate_fleet(
        trace, num_replicas=num_replicas, costs=costs,
        prompt_time=prompt_time, step_time=step_time, max_batch=max_batch,
        policy=policy, routing=routing, fault_plan=fault_plan,
        autoscaler=autoscaler, kv_block_size=kv_block_size,
        kv_num_layers=model.config.layers, prefix_sharing=prefix_sharing,
        detail=detail,
    )
    if prompts is None:
        prompts = synthesize_prompts(trace, vocab=model.config.vocab,
                                     seed=seed)
    else:
        for r in trace.requests:
            got = np.asarray(prompts[r.request_id]).size
            if got != r.prompt_len:
                raise ValueError(
                    f"prompt for request {r.request_id} has {got} tokens, "
                    f"trace says {r.prompt_len}")

    sessions = tuple(
        _replay_replica(model, trace, prompts, sched,
                        max_batch=max_batch, policy=policy,
                        crash_step=report.crash_steps.get(i),
                        kv_block_size=kv_block_size,
                        kv_pool_blocks=kv_pool_blocks,
                        prefix_sharing=prefix_sharing)
        for i, sched in enumerate(report.schedulers)
    )
    # Pre-crash incarnations of recovered replicas replay the same way;
    # each died at its recorded crash step.
    past_sessions = {
        i: tuple(
            _replay_replica(model, trace, prompts, sched,
                            max_batch=max_batch, policy=policy,
                            crash_step=crash_step,
                            kv_block_size=kv_block_size,
                            kv_pool_blocks=kv_pool_blocks,
                            prefix_sharing=prefix_sharing)
            for sched, crash_step in incarnations
        )
        for i, incarnations in report.past_schedulers.items()
    }

    def output_of(rid: int, i: int) -> np.ndarray:
        # The final incarnation usually served it; a request that
        # finished before a crash-and-recover lives in a past session.
        candidates = [sessions[i]] + list(reversed(past_sessions.get(i, ())))
        for session in candidates:
            try:
                return session.result(rid).output_ids
            except KeyError:
                continue
        raise KeyError(
            f"request {rid} finished on replica {i} analytically but no "
            f"incarnation completed it functionally")

    outputs = {
        rid: output_of(rid, i)
        for rid, i in report.replica_of.items()
        if rid in report.finish_times
    }
    return FleetFunctionalResult(report=report, outputs=outputs,
                                 sessions=sessions,
                                 past_sessions=past_sessions)
