"""The fleet router: placement authority over a pool of replicas.

What the :class:`~repro.engine.scheduler.Scheduler` is to one server —
the single owner of lifecycle decisions, consumed identically by the
functional and analytical backends — the :class:`Router` is to the
fleet: the single owner of *placement*. It tracks per-replica liveness
and outstanding token work (assigned minus completed), delegates each
choice to a pluggable :class:`~repro.fleet.policies.RoutingPolicy`, and
logs every decision (including post-crash retries) for the report.

The router deliberately measures load in **tokens**, not priced
seconds: token work is observable in both the analytical and the
functional backend, so a shared trace routes identically in both —
the fleet-level analogue of the PR-1 decision-equivalence guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.serving_sim import Request
from .policies import RoutingPolicy, resolve_routing_policy

__all__ = ["RoutingDecision", "Router"]


@dataclass(frozen=True)
class RoutingDecision:
    """One placement: ``request_id`` went to ``replica`` at ``time``."""

    time: float
    request_id: int
    replica: int
    retry: bool = False


class Router:
    """Policy-driven placement with liveness and load accounting.

    The pool is mutable: the autoscaler adds replicas
    (:meth:`add_replica`), drains them out of rotation
    (:meth:`mark_draining`), returns recovered ones
    (:meth:`mark_recovered`), and biases load-aware policies with
    per-replica weights (:meth:`set_weight`). A router that never sees
    those calls behaves exactly as the static pool always has.
    """

    def __init__(self, num_replicas: int,
                 policy: str | RoutingPolicy = "round_robin") -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.policy = resolve_routing_policy(policy)
        self._alive = [True] * num_replicas
        self._draining = [False] * num_replicas
        self._weights = [1.0] * num_replicas
        self._outstanding = [0.0] * num_replicas
        self.decisions: list[RoutingDecision] = []

    # -- FleetView (what policies may observe) ---------------------------

    @property
    def num_replicas(self) -> int:
        """Size of the replica pool (dead and draining ones included)."""
        return len(self._alive)

    def is_alive(self, replica: int) -> bool:
        """Liveness of one replica."""
        return self._alive[replica]

    def is_routable(self, replica: int) -> bool:
        """Whether new work may be placed on ``replica`` (alive and not
        draining)."""
        return self._alive[replica] and not self._draining[replica]

    def alive_replicas(self) -> list[int]:
        """Indices of routable replicas, ascending (a draining replica
        is alive but no longer a placement candidate)."""
        return [i for i in range(len(self._alive)) if self.is_routable(i)]

    def outstanding(self, replica: int) -> float:
        """Token work assigned to ``replica`` and not yet completed."""
        return self._outstanding[replica]

    def weight(self, replica: int) -> float:
        """Routing weight of one replica (1.0 = full share)."""
        return self._weights[replica]

    # -- placement -------------------------------------------------------

    def route(self, request: Request, time: float, *,
              retry: bool = False) -> int:
        """Place one request; returns the chosen replica index."""
        if not any(map(self.is_routable, range(len(self._alive)))):
            raise RuntimeError(
                "every replica has failed; the fleet cannot serve "
                f"request {request.request_id}"
            )
        replica = self.policy.choose(request, self)
        if not (0 <= replica < len(self._alive)) \
                or not self.is_routable(replica):
            raise RuntimeError(
                f"policy {self.policy.name!r} chose unusable replica "
                f"{replica}"
            )
        self._outstanding[replica] += request.work_tokens
        self.decisions.append(
            RoutingDecision(time, request.request_id, replica, retry))
        return replica

    def complete(self, request: Request, replica: int) -> None:
        """Report a request finished on ``replica``; releases its load."""
        self._outstanding[replica] = max(
            0.0, self._outstanding[replica] - request.work_tokens)

    def mark_failed(self, replica: int) -> None:
        """Take ``replica`` out of rotation; its load register clears
        (the sim re-routes the victims, which re-adds their work)."""
        self._alive[replica] = False
        self._outstanding[replica] = 0.0

    # -- autoscale mutations ----------------------------------------------

    def add_replica(self) -> int:
        """Grow the pool by one routable replica; returns its index."""
        self._alive.append(True)
        self._draining.append(False)
        self._weights.append(1.0)
        self._outstanding.append(0.0)
        return len(self._alive) - 1

    def mark_draining(self, replica: int) -> None:
        """Stop placing new work on ``replica``; already-assigned work
        keeps running to completion (the graceful half of scale-in and
        drain-and-replace)."""
        self._draining[replica] = True

    def mark_recovered(self, replica: int) -> None:
        """Return a crashed replica to rotation with a clean load
        register and full weight."""
        self._alive[replica] = True
        self._draining[replica] = False
        self._weights[replica] = 1.0
        self._outstanding[replica] = 0.0

    def set_weight(self, replica: int, weight: float) -> None:
        """Bias load-aware policies for/against ``replica`` (e.g. 0.5
        halves its share while a slowdown is remediated)."""
        if weight <= 0:
            raise ValueError("weight must be > 0")
        self._weights[replica] = weight

    # -- reporting -------------------------------------------------------

    def assignments(self) -> dict[int, int]:
        """Final placement per request id (later retries overwrite)."""
        return {d.request_id: d.replica for d in self.decisions}

    @property
    def num_retries(self) -> int:
        """Placements that were post-fault retries."""
        return sum(1 for d in self.decisions if d.retry)
