"""The fleet router: placement authority over a pool of replicas.

What the :class:`~repro.engine.scheduler.Scheduler` is to one server —
the single owner of lifecycle decisions, consumed identically by the
functional and analytical backends — the :class:`Router` is to the
fleet: the single owner of *placement*. It tracks per-replica liveness
and outstanding token work (assigned minus completed), delegates each
choice to a pluggable :class:`~repro.fleet.policies.RoutingPolicy`, and
logs every decision (including post-crash retries) for the report.

The router deliberately measures load in **tokens**, not priced
seconds: token work is observable in both the analytical and the
functional backend, so a shared trace routes identically in both —
the fleet-level analogue of the PR-1 decision-equivalence guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.serving_sim import Request
from .policies import RoutingPolicy, resolve_routing_policy

__all__ = ["RoutingDecision", "Router"]


@dataclass(frozen=True)
class RoutingDecision:
    """One placement: ``request_id`` went to ``replica`` at ``time``."""

    time: float
    request_id: int
    replica: int
    retry: bool = False


class Router:
    """Policy-driven placement with liveness and load accounting."""

    def __init__(self, num_replicas: int,
                 policy: str | RoutingPolicy = "round_robin") -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.policy = resolve_routing_policy(policy)
        self._alive = [True] * num_replicas
        self._outstanding = [0.0] * num_replicas
        self.decisions: list[RoutingDecision] = []

    # -- FleetView (what policies may observe) ---------------------------

    @property
    def num_replicas(self) -> int:
        """Size of the replica pool (dead ones included)."""
        return len(self._alive)

    def is_alive(self, replica: int) -> bool:
        """Liveness of one replica."""
        return self._alive[replica]

    def alive_replicas(self) -> list[int]:
        """Indices of live replicas, ascending."""
        return [i for i, up in enumerate(self._alive) if up]

    def outstanding(self, replica: int) -> float:
        """Token work assigned to ``replica`` and not yet completed."""
        return self._outstanding[replica]

    # -- placement -------------------------------------------------------

    def route(self, request: Request, time: float, *,
              retry: bool = False) -> int:
        """Place one request; returns the chosen replica index."""
        if not any(self._alive):
            raise RuntimeError(
                "every replica has failed; the fleet cannot serve "
                f"request {request.request_id}"
            )
        replica = self.policy.choose(request, self)
        if not (0 <= replica < len(self._alive)) or not self._alive[replica]:
            raise RuntimeError(
                f"policy {self.policy.name!r} chose unusable replica "
                f"{replica}"
            )
        self._outstanding[replica] += request.work_tokens
        self.decisions.append(
            RoutingDecision(time, request.request_id, replica, retry))
        return replica

    def complete(self, request: Request, replica: int) -> None:
        """Report a request finished on ``replica``; releases its load."""
        self._outstanding[replica] = max(
            0.0, self._outstanding[replica] - request.work_tokens)

    def mark_failed(self, replica: int) -> None:
        """Take ``replica`` out of rotation; its load register clears
        (the sim re-routes the victims, which re-adds their work)."""
        self._alive[replica] = False
        self._outstanding[replica] = 0.0

    # -- reporting -------------------------------------------------------

    def assignments(self) -> dict[int, int]:
        """Final placement per request id (later retries overwrite)."""
        return {d.request_id: d.replica for d in self.decisions}

    @property
    def num_retries(self) -> int:
        """Placements that were post-fault retries."""
        return sum(1 for d in self.decisions if d.retry)
