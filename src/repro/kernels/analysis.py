"""Roofline analysis: where each kernel region sits and why.

Sec. III's whole argument is a roofline argument: small-batch inference
is bandwidth-bound (latency = bytes / bandwidth), prompt processing is
compute-bound, and the crossover batch is where an implementation's
character changes. This module turns the cost model's per-region numbers
into that analysis: arithmetic intensity, the machine balance point, the
bound classification, and the batch size at which a deployment's token
step crosses from bandwidth- to compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType, GPUSpec
from .costmodel import KernelCostModel
from .graph import LayerShape
from .profiles import DEEPSPEED_FP16, ImplementationProfile

__all__ = ["RegionAnalysis", "machine_balance", "analyze_layer", "crossover_batch"]


def machine_balance(gpu: GPUSpec, dtype: DType = DType.FP16) -> float:
    """Flops per byte at which the roofline's two regimes meet."""
    return gpu.peak_flops(dtype) / gpu.mem_bw


@dataclass(frozen=True)
class RegionAnalysis:
    """One fused region's position on the roofline."""

    name: str
    flops: float
    hbm_bytes: float
    bound: str
    time: float

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per HBM byte."""
        return self.flops / self.hbm_bytes if self.hbm_bytes > 0 else float("inf")


def analyze_layer(
    gpu: GPUSpec,
    shape: LayerShape,
    profile: ImplementationProfile = DEEPSPEED_FP16,
) -> list[RegionAnalysis]:
    """Roofline placement of each fused region of one layer invocation."""
    model = KernelCostModel(gpu, profile)
    cost = model.layer_cost(shape)
    out = []
    for r in cost.regions:
        out.append(
            RegionAnalysis(
                name=r.name,
                flops=r.flops,
                hbm_bytes=r.hbm_bytes,
                bound=r.bound,
                time=r.total,
            )
        )
    return out


def crossover_batch(
    gpu: GPUSpec,
    hidden: int,
    heads: int,
    *,
    kv_len: int = 128,
    profile: ImplementationProfile = DEEPSPEED_FP16,
    max_batch: int = 1 << 16,
) -> int:
    """Smallest token-generation batch whose layer is compute-bound.

    Below this batch the paper's bandwidth-centric kernels (Sec. III)
    set the latency; above it, GeMM throughput does. Returns ``max_batch``
    if the layer never crosses within the search range.
    """
    model = KernelCostModel(gpu, profile)
    lo, hi = 1, max_batch
    def bound_at(b: int) -> str:
        shape = LayerShape(hidden=hidden, heads=heads, batch=b,
                           tokens_per_seq=1, kv_len=max(kv_len, 1))
        cost = model.layer_cost(shape)
        # The layer is compute-bound when its GeMM time is.
        gemm_regions = [r for r in cost.regions if "gemm" in r.name]
        mem = sum(r.memory_time for r in gemm_regions)
        cmp = sum(r.compute_time for r in gemm_regions)
        return "compute" if cmp > mem else "memory"

    if bound_at(1) == "compute":
        return 1
    if bound_at(max_batch) == "memory":
        return max_batch
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if bound_at(mid) == "compute":
            hi = mid
        else:
            lo = mid
    return hi
