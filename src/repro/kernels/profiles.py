"""Implementation profiles: the knobs that separate DeepSpeed Inference
from its comparators.

Every performance gap the paper reports is attributed to a small set of
mechanisms (Sec. III, VII-E): fusion aggressiveness, GeMM implementation
at small batch, CUDA-graph launch elimination, INT8 datapath, and — for
the baselines — framework dispatch overhead. A profile bundles one
setting of each so that baselines are *the same cost model with different
mechanisms switched off*, which keeps comparisons honest and makes
ablations (Fig. 10a) a matter of toggling one field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hardware.specs import DType
from .fusion import FusionStrategy

__all__ = [
    "ImplementationProfile",
    "PYTORCH_FP16",
    "MEGATRON_FP16",
    "FASTER_TRANSFORMER_FP16",
    "ET_FP16",
    "DEEPSPEED_FP16",
    "DEEPSPEED_INT8",
    "PROFILE_REGISTRY",
]


@dataclass(frozen=True)
class ImplementationProfile:
    """Mechanism settings of one inference implementation.

    Attributes
    ----------
    fusion:
        Operator-fusion strategy (how the layer's op chain partitions
        into kernels).
    sbi_gemm:
        Use the paper's SBI-GeMM for skinny weight GeMMs instead of
        cuBLAS (Sec. III-C).
    cuda_graph:
        Replay the per-token kernel sequence as a CUDA graph, removing
        CPU launch overhead (Sec. III-D).
    weight_dtype / compute_dtype:
        INT8 halves weight traffic and doubles tensor-core peak
        (DeepSpeed-INT8); activations stay FP16.
    dispatch_overhead:
        Per-kernel CPU-side framework overhead *in addition to* the
        driver launch cost — eager PyTorch pays this, compiled runtimes
        do not.
    nongemm_bw_eff:
        Achieved fraction of peak bandwidth for non-GeMM kernels.
    small_batch_tokens:
        Token threshold below which the small-batch path (SBI-GeMM +
        GeMM fusion) is selected (Sec. III-D distinguishes the two
        kernels).
    supports_kv_cache:
        Generative KV-caching support (E.T. lacks it, Sec. II-d).
    """

    name: str
    fusion: FusionStrategy
    sbi_gemm: bool
    cuda_graph: bool
    weight_dtype: DType = DType.FP16
    compute_dtype: DType = DType.FP16
    dispatch_overhead: float = 0.0
    nongemm_bw_eff: float = 0.72
    small_batch_tokens: int = 16
    supports_kv_cache: bool = True
    # Fraction of dense weight traffic actually read (E.T.'s pruning
    # shrinks its GeMM weight streams; 1.0 = dense).
    weight_traffic_scale: float = 1.0

    def with_(self, **kw) -> "ImplementationProfile":
        """Derived profile with selected mechanisms toggled (ablations)."""
        return replace(self, **kw)


PYTORCH_FP16 = ImplementationProfile(
    name="PyTorch-FP16",
    fusion=FusionStrategy.NONE,
    sbi_gemm=False,
    cuda_graph=False,
    dispatch_overhead=4.0e-6,  # eager-mode python/dispatcher cost per op
    nongemm_bw_eff=0.62,
)

# The Fig. 10a baseline: Megatron's inference path — eager PyTorch with a
# handful of hand-fused elementwise ops; modeled as unfused kernels at
# slightly better non-GeMM efficiency than stock eager.
MEGATRON_FP16 = PYTORCH_FP16.with_(name="Megatron-FP16", nongemm_bw_eff=0.66)

FASTER_TRANSFORMER_FP16 = ImplementationProfile(
    name="FasterTransformer-FP16",
    fusion=FusionStrategy.ELEMENTWISE,
    sbi_gemm=False,
    cuda_graph=False,
    dispatch_overhead=0.5e-6,  # compiled C++ runtime, negligible dispatch
    nongemm_bw_eff=0.70,
)

ET_FP16 = ImplementationProfile(
    name="E.T.-FP16",
    fusion=FusionStrategy.ATTENTION,
    sbi_gemm=False,
    cuda_graph=False,
    dispatch_overhead=0.5e-6,
    nongemm_bw_eff=0.72,
    supports_kv_cache=False,  # encoder-only kernels (Sec. II-d)
    weight_traffic_scale=0.70,  # E.T. prunes its GeMM weights
)

DEEPSPEED_FP16 = ImplementationProfile(
    name="DeepSpeed-FP16",
    fusion=FusionStrategy.DEEP,
    sbi_gemm=True,
    cuda_graph=True,
    dispatch_overhead=0.0,
    nongemm_bw_eff=0.80,
)

DEEPSPEED_INT8 = DEEPSPEED_FP16.with_(
    name="DeepSpeed-INT8",
    weight_dtype=DType.INT8,
)

PROFILE_REGISTRY = {
    p.name: p
    for p in (
        PYTORCH_FP16,
        MEGATRON_FP16,
        FASTER_TRANSFORMER_FP16,
        ET_FP16,
        DEEPSPEED_FP16,
        DEEPSPEED_INT8,
    )
}
