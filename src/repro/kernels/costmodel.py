"""Roofline kernel cost model with fusion- and launch-aware terms.

Each fused region executes in::

    time = max(hbm_bytes / (mem_bw * bw_eff), flops / (peak * compute_eff))
           + launch_cost

which captures the paper's two regimes directly: small-batch inference is
the left branch (weight streaming, Sec. III-A), large-batch the right
(compute saturation). The profile decides the efficiencies — cuBLAS vs
SBI-GeMM bandwidth curves, FP16 vs INT8 peaks and weight traffic — and
whether launch cost is paid per kernel (eager), per kernel minus dispatch
(compiled runtime) or eliminated entirely (CUDA graph, Sec. III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType, GPUSpec
from .fusion import FusedRegion, partition
from .gemm import (
    cublas_bw_efficiency,
    cublas_compute_efficiency,
    cutlass_int8_compute_efficiency,
    sbi_bw_efficiency,
)
from .graph import LayerShape, transformer_layer_ops
from .ops import OpKind
from .profiles import ImplementationProfile

__all__ = ["RegionTime", "LayerCost", "KernelCostModel"]

# Residual per-node cost of replaying a kernel inside a CUDA graph.
_GRAPH_NODE_OVERHEAD = 0.3e-6


@dataclass(frozen=True)
class RegionTime:
    """Modeled execution time of one fused region.

    ``launch_time`` is the asynchronous driver launch cost: it only shows
    up when the kernel itself is shorter than the launch (the CPU cannot
    keep the GPU fed — exactly the small-model regime Sec. III-D's CUDA
    graphs attack). ``dispatch_time`` is *synchronous* CPU framework work
    (eager-mode op dispatch) and always adds to the critical path.
    """

    name: str
    memory_time: float
    compute_time: float
    launch_time: float
    hbm_bytes: float
    flops: float
    dispatch_time: float = 0.0

    @property
    def total(self) -> float:
        """Roofline time, with launch overhead hidden behind long kernels."""
        exec_time = max(self.memory_time, self.compute_time)
        return max(exec_time, self.launch_time) + self.dispatch_time

    @property
    def bound(self) -> str:
        """Which roofline branch dominates."""
        return "memory" if self.memory_time >= self.compute_time else "compute"


@dataclass(frozen=True)
class LayerCost:
    """Aggregate cost of one transformer-layer invocation on one GPU."""

    regions: tuple[RegionTime, ...]

    @property
    def total_time(self) -> float:
        """End-to-end layer time in seconds."""
        return sum(r.total for r in self.regions)

    @property
    def kernel_count(self) -> int:
        """Kernels launched per layer (fusion's first-order effect)."""
        return len(self.regions)

    @property
    def launch_time(self) -> float:
        """Total launch/dispatch overhead."""
        return sum(r.launch_time for r in self.regions)

    @property
    def hbm_bytes(self) -> float:
        """Total modeled HBM traffic."""
        return sum(r.hbm_bytes for r in self.regions)

    @property
    def flops(self) -> float:
        """Total math work."""
        return sum(r.flops for r in self.regions)

    @property
    def effective_bandwidth(self) -> float:
        """Achieved HBM bytes/s — the metric of Fig. 11."""
        t = self.total_time
        return self.hbm_bytes / t if t > 0 else 0.0


class KernelCostModel:
    """Times fused regions of a transformer layer on one GPU."""

    def __init__(self, gpu: GPUSpec, profile: ImplementationProfile) -> None:
        self.gpu = gpu
        self.profile = profile

    # -- public API -------------------------------------------------------

    def layer_cost(self, shape: LayerShape) -> LayerCost:
        """Cost of one dense transformer layer with this implementation."""
        ops = transformer_layer_ops(shape)
        return self.chain_cost(ops, tokens=shape.tokens)

    def chain_cost(self, ops, *, tokens: int) -> LayerCost:
        """Cost of an arbitrary op chain (used for MoE blocks too)."""
        small = self._small_batch(tokens)
        regions = partition(list(ops), self.profile.fusion, small_batch=small)
        return LayerCost(tuple(self.region_time(r, tokens) for r in regions))

    def region_time(self, region: FusedRegion, tokens: int) -> RegionTime:
        """Roofline + launch time for one fused region."""
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        hbm = self._region_hbm_bytes(region)
        bw_eff = self._bw_efficiency(region, tokens)
        memory_time = hbm / (self.gpu.mem_bw * bw_eff)
        compute_time = self._compute_time(region, tokens)
        return RegionTime(
            name=region.name,
            memory_time=memory_time,
            compute_time=compute_time,
            launch_time=self._launch_cost(),
            hbm_bytes=hbm,
            flops=region.flops,
            dispatch_time=self.profile.dispatch_overhead,
        )

    # -- internals --------------------------------------------------------

    def _small_batch(self, tokens: int) -> bool:
        return tokens <= self.profile.small_batch_tokens

    def _weight_scale(self) -> float:
        """Weight-traffic scale: quantized storage (INT8 halves FP16) and
        pruning (E.T.) both shrink the bytes streamed per GeMM."""
        return (
            self.profile.weight_dtype.itemsize
            / self.profile.compute_dtype.itemsize
        ) * self.profile.weight_traffic_scale

    def _region_hbm_bytes(self, region: FusedRegion) -> float:
        w = sum(
            op.weight_bytes * (self._weight_scale() if op.is_weight_gemm else 1.0)
            for op in region.ops
        )
        return w + region.act_bytes

    def _gemm_out_features(self, region: FusedRegion, tokens: int) -> int:
        """Recover the (local) output width of the region's weight GeMM."""
        for op in region.ops:
            if op.is_weight_gemm:
                d = self.profile.compute_dtype.itemsize
                return max(1, int(op.act_out_bytes / (tokens * d)))
        raise ValueError("region has no weight GeMM")

    def _bw_efficiency(self, region: FusedRegion, tokens: int) -> float:
        has_weight_gemm = any(op.is_weight_gemm for op in region.ops)
        if not has_weight_gemm:
            return self.profile.nongemm_bw_eff
        if self.profile.sbi_gemm and self._small_batch(tokens):
            out_features = self._gemm_out_features(region, tokens)
            return sbi_bw_efficiency(
                self.gpu, tokens, out_features, self.profile.weight_dtype
            )
        return cublas_bw_efficiency(tokens)

    def _compute_time(self, region: FusedRegion, tokens: int) -> float:
        has_weight_gemm = any(op.is_weight_gemm for op in region.ops)
        has_attention = any(op.kind is OpKind.ATTENTION for op in region.ops)
        if has_weight_gemm:
            if self.profile.weight_dtype is DType.INT8:
                peak = self.gpu.peak_flops(DType.INT8)
                eff = cutlass_int8_compute_efficiency(tokens)
            else:
                peak = self.gpu.peak_flops(self.profile.compute_dtype)
                eff = cublas_compute_efficiency(tokens)
        elif has_attention:
            # Batched per-head contractions achieve lower utilization than
            # weight GeMMs of the same flop count.
            peak = self.gpu.peak_flops(self.profile.compute_dtype)
            eff = 0.5 * cublas_compute_efficiency(max(1, tokens))
        else:
            # Elementwise/reduction math is never the roofline binder, but
            # keep a finite term so the max() is well defined.
            peak = self.gpu.peak_flops(DType.FP32)
            eff = 0.5
        return region.flops / (peak * eff) if region.flops else 0.0

    def _launch_cost(self) -> float:
        if self.profile.cuda_graph:
            return _GRAPH_NODE_OVERHEAD
        return self.gpu.kernel_launch_overhead
