"""Functional (NumPy) transformer kernels.

These implement the math whose *performance* the cost model predicts.
They exist so every optimized formulation in the paper can be checked for
numerical equivalence against a straightforward reference: the fused
region kernels compute exactly what their unfused op chains compute, the
KV-cached attention matches full recomputation, and the MoE dense-table
dispatch (in :mod:`repro.model.moe`) matches the sparse one-hot einsum.

Conventions: activations are ``(tokens, hidden)`` or
``(batch, seq, hidden)`` float32/float64 arrays (float64 default keeps
equivalence tests tight); weights are ``(in_features, out_features)``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "layer_norm",
    "gelu",
    "softmax",
    "linear",
    "bias_residual",
    "split_heads",
    "merge_heads",
    "apply_rotary",
    "scaled_dot_product_attention",
    "fused_layernorm_qkv",
    "fused_layernorm_mlp",
    "fused_bias_gelu",
]


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation, as GPT uses)."""
    c = math.sqrt(2.0 / math.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight + bias`` with ``weight: (in, out)``."""
    y = x @ weight
    if bias is not None:
        y = y + bias
    return y


def bias_residual(x: np.ndarray, bias: np.ndarray | None, residual: np.ndarray) -> np.ndarray:
    """The paper's fused region 4: bias add + residual add."""
    if bias is not None:
        return x + bias + residual
    return x + residual


def split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """``(batch, seq, hidden) -> (batch, heads, seq, head_dim)`` — the
    head-wise data-layout transformation Deep-Fusion folds into the
    attention region."""
    b, s, h = x.shape
    if h % heads:
        raise ValueError("hidden not divisible by heads")
    return x.reshape(b, s, heads, h // heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    b, n, s, d = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, s, n * d)


def apply_rotary(
    x: np.ndarray,
    *,
    position_offset: int = 0,
    positions: np.ndarray | None = None,
    theta: float = 10000.0,
) -> np.ndarray:
    """Rotary position embedding (RoPE) over ``(batch, heads, seq, hd)``.

    Pairs of feature dimensions rotate by a position-dependent angle;
    because rotations compose, the Q.K inner product depends only on the
    *relative* distance between positions — the property GPT-J/GPT-NeoX
    (Table I) rely on. ``position_offset`` places the tokens on the
    absolute timeline, which is what makes RoPE compatible with KV
    caching: cached keys were rotated at their own positions once and
    never need re-rotation. ``positions`` (``(batch, seq)``) overrides
    the uniform timeline for ragged batches where rows sit at different
    absolute positions.
    """
    if x.ndim != 4:
        raise ValueError("expected (batch, heads, seq, head_dim)")
    hd = x.shape[-1]
    if hd % 2:
        raise ValueError("head_dim must be even for rotary embeddings")
    half = hd // 2
    inv_freq = theta ** (-np.arange(half) / half)
    if positions is None:
        pos = np.arange(x.shape[2]) + position_offset
        angles = pos[:, None] * inv_freq[None, :]  # (seq, half)
        cos = np.cos(angles)
        sin = np.sin(angles)
    else:
        positions = np.asarray(positions)
        if positions.shape != (x.shape[0], x.shape[2]):
            raise ValueError("positions must be (batch, seq)")
        angles = positions[:, :, None] * inv_freq[None, None, :]
        cos = np.cos(angles)[:, None, :, :]  # (b, 1, seq, half)
        sin = np.sin(angles)[:, None, :, :]
    x1, x2 = x[..., :half], x[..., half:]
    out = np.empty_like(x)
    out[..., :half] = x1 * cos - x2 * sin
    out[..., half:] = x1 * sin + x2 * cos
    return out


def scaled_dot_product_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    causal: bool = True,
    query_offset: int = 0,
    key_mask: np.ndarray | None = None,
    query_positions: np.ndarray | None = None,
    key_positions: np.ndarray | None = None,
) -> np.ndarray:
    """Attention over ``(batch, heads, seq, head_dim)`` tensors.

    ``query_offset`` positions the queries within the key timeline: during
    token generation queries start at position ``kv_len - new_tokens``
    (they attend to the whole cache), which is how KV-cached decoding
    preserves causality.

    ``key_mask`` is an optional ``(batch, kv_len)`` boolean array marking
    *valid* key positions; padded positions receive zero attention
    weight (ragged-batch support).

    ``query_positions``/``key_positions`` (``(batch, sq)``/``(batch,
    sk)``) give each row its own timeline; when provided, causality is
    ``key_position > query_position`` per row — what ragged batches with
    per-row offsets need. Both must be given together.
    """
    d = q.shape[-1]
    scores = q @ k.transpose(0, 1, 3, 2) / math.sqrt(d)
    if (query_positions is None) != (key_positions is None):
        raise ValueError("query_positions and key_positions come together")
    if causal:
        if query_positions is not None:
            qpos = np.asarray(query_positions)[:, None, :, None]
            kpos = np.asarray(key_positions)[:, None, None, :]
            mask = kpos > qpos
        else:
            sq, sk = q.shape[2], k.shape[2]
            qp = np.arange(sq)[:, None] + query_offset
            kp = np.arange(sk)[None, :]
            mask = kp > qp
        scores = np.where(mask, -1e30, scores)
    if key_mask is not None:
        if key_mask.shape != (q.shape[0], k.shape[2]):
            raise ValueError("key_mask must be (batch, kv_len)")
        scores = np.where(key_mask[:, None, None, :], scores, -1e30)
    return softmax(scores, axis=-1) @ v


# --------------------------------------------------------------------------
# Fused-region kernels. Each computes, in one call, exactly what its
# constituent ops compute — the functional counterpart of Deep-Fusion's
# guarantee that fusion changes data movement, not semantics.
# --------------------------------------------------------------------------


def fused_layernorm_qkv(
    x: np.ndarray,
    ln_gamma: np.ndarray,
    ln_beta: np.ndarray,
    w_qkv: np.ndarray,
    b_qkv: np.ndarray | None,
) -> np.ndarray:
    """Region 1 of Fig. 1c: input layer-norm + QKV GeMM + bias."""
    return linear(layer_norm(x, ln_gamma, ln_beta), w_qkv, b_qkv)


def fused_layernorm_mlp(
    x: np.ndarray,
    ln_gamma: np.ndarray,
    ln_beta: np.ndarray,
    w_fc: np.ndarray,
    b_fc: np.ndarray | None,
) -> np.ndarray:
    """Region 3 of Fig. 1c: post-attention layer-norm + intermediate GeMM
    (+ the GeLU epilogue)."""
    return gelu(linear(layer_norm(x, ln_gamma, ln_beta), w_fc, b_fc))


def fused_bias_gelu(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """GeMM epilogue: bias add followed by GeLU in one pass."""
    return gelu(x + bias)
