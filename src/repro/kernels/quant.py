"""INT8 weight quantization (DeepSpeed-INT8, Sec. III-D).

The paper's INT8 path quantizes weights to 8 bits (halving the dominant
memory traffic and engaging the 2x INT8 tensor-core peak), fuses the
activation quantize before the GeMM and the dequantize into the CUTLASS
epilogue. We implement symmetric per-output-channel quantization — the
scheme that keeps GeMM a pure integer contraction with one per-column
rescale, exactly what an epilogue can absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_symmetric",
    "dequantize",
    "int8_linear",
    "quantization_error_bound",
]

_INT8_MAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """INT8 payload plus per-channel scales (axis=last)."""

    data: np.ndarray  # int8
    scale: np.ndarray  # float, broadcastable over data's last axis

    def __post_init__(self) -> None:
        if self.data.dtype != np.int8:
            raise TypeError("quantized payload must be int8")
        if np.any(self.scale <= 0):
            raise ValueError("scales must be positive")

    @property
    def nbytes(self) -> int:
        """Storage footprint of the quantized payload."""
        return self.data.nbytes + self.scale.nbytes


def quantize_symmetric(w: np.ndarray, *, axis: int = 0) -> QuantizedTensor:
    """Symmetric per-channel quantization, reducing over ``axis``.

    The default ``axis=0`` gives per-output-column scales for an
    ``(in, out)`` weight -- the layout :func:`int8_linear` consumes.

    Each channel c maps to ``round(w / scale_c)`` with
    ``scale_c = max|w_c| / 127``, so zero is exactly representable and the
    GeMM needs no zero-point corrections.
    """
    absmax = np.abs(w).max(axis=axis, keepdims=True)
    # Guard all-zero channels (scale 1 quantizes them to exact zeros) and
    # subnormal channels whose absmax/127 would underflow to 0.
    tiny = np.finfo(np.float64).tiny
    scale = np.where(absmax > 0, np.maximum(absmax / _INT8_MAX, tiny), 1.0)
    q = np.clip(np.rint(w / scale), -_INT8_MAX, _INT8_MAX).astype(np.int8)
    return QuantizedTensor(q, np.squeeze(scale, axis=axis))


def dequantize(qt: QuantizedTensor, *, axis: int = 0) -> np.ndarray:
    """Reconstruct the float tensor."""
    scale = np.expand_dims(qt.scale, axis=axis)
    return qt.data.astype(np.float64) * scale


def int8_linear(
    x: np.ndarray, qweight: QuantizedTensor, bias: np.ndarray | None = None
) -> np.ndarray:
    """Linear layer with INT8 weights: integer-domain contraction with the
    dequantize folded into the epilogue (per-output-column rescale).

    ``qweight.data`` has shape ``(in, out)``; scales are per output column.
    """
    if qweight.data.ndim != 2:
        raise ValueError("int8_linear expects a 2-D weight")
    acc = x @ qweight.data.astype(np.float64)  # integer-exact in float64
    y = acc * qweight.scale  # epilogue rescale
    if bias is not None:
        y = y + bias
    return y


def quantization_error_bound(w: np.ndarray, *, axis: int = 0) -> float:
    """Worst-case absolute error of symmetric INT8 quantization: half an
    LSB per element, i.e. ``scale / 2`` of the widest channel."""
    absmax = np.abs(w).max(axis=axis)
    return float(np.max(absmax) / _INT8_MAX / 2.0) if w.size else 0.0
