"""GeMM efficiency models: cuBLAS/CUTLASS vs the paper's SBI-GeMM.

Sec. III-A observes that library GeMMs are tuned for large training
batches: at inference batch sizes they neither saturate memory bandwidth
(skinny problems leave SMs idle and waste cache lines) nor compute. SBI
(Small-Batch-Inference) GeMM (Sec. III-C) instead:

* tiles the *output* dimension so one kernel suffices (falling back to a
  two-kernel input-dimension split when the output dim is too small to
  occupy the SMs),
* replaces tree reductions in shared memory with a single transpose plus
  cooperative-group register reduction,
* transposes the weight layout at init so each thread reads a full
  128-byte cache line (M=2 elements for FP16, M=4 for INT8).

The functions below return *efficiency fractions* in (0, 1]: achieved
fraction of peak memory bandwidth for bandwidth-bound GeMMs, and of peak
math throughput for compute-bound ones. They are smooth, monotone
calibration curves — the constants are pinned by the paper's measured
speedups (see tests/test_calibration.py), not derived from hardware
counters we do not have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.specs import DType, GPUSpec

__all__ = [
    "GemmKind",
    "cublas_bw_efficiency",
    "cublas_compute_efficiency",
    "cutlass_int8_compute_efficiency",
    "sbi_bw_efficiency",
    "sbi_tile_plan",
    "SBITilePlan",
]


class GemmKind:
    """Names for the GeMM implementations the cost model can pick."""

    CUBLAS = "cublas"
    CUTLASS_INT8 = "cutlass-int8"
    SBI = "sbi"


def cublas_bw_efficiency(tokens: int) -> float:
    """Fraction of peak HBM bandwidth a cuBLAS GeMM achieves on a skinny
    ``tokens x K @ K x N`` problem.

    Library kernels pick tile shapes for throughput; at tokens ~ 1-8 they
    read weights with poor cache-line utilization and too few CTAs
    (Sec. III-A "neither cuBLAS nor CUTLASS ... can achieve good
    memory-bandwidth utilization"). Efficiency climbs with tokens and
    saturates around 0.8.
    """
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    return 0.68 + 0.14 * (1.0 - math.exp(-(tokens - 1) / 16.0))


def cublas_compute_efficiency(tokens: int) -> float:
    """Fraction of peak math throughput for compute-bound cuBLAS GeMMs.

    Rises with the token count (more parallel rows amortize the weight
    reads across tensor-core work), saturating near 0.78 of peak for the
    prompt-processing regime of thousands of tokens.
    """
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    return 0.80 * tokens / (tokens + 96.0)


def cutlass_int8_compute_efficiency(tokens: int) -> float:
    """CUTLASS INT8 GeMM compute efficiency (Sec. III-D, tuned per batch)."""
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    return 0.72 * tokens / (tokens + 96.0)


@dataclass(frozen=True)
class SBITilePlan:
    """Resolved SBI-GeMM schedule for one skinny GeMM (Sec. III-C1)."""

    output_tiles: int
    split_input_dim: bool  # two-kernel fallback for small output dims
    elements_per_thread: int  # M of Sec. III-C3
    kernels: int

    @property
    def description(self) -> str:
        """One-line human-readable schedule summary."""
        mode = "2-kernel input-split" if self.split_input_dim else "1-kernel"
        return (
            f"{mode}, {self.output_tiles} output tiles, "
            f"M={self.elements_per_thread}/thread"
        )


def sbi_tile_plan(
    gpu: GPUSpec, out_features: int, dtype: DType, *, tile_cols: int = 64
) -> SBITilePlan:
    """Choose the SBI-GeMM tiling for ``out_features`` outputs.

    One thread block produces ``tile_cols`` outputs. When that yields too
    few tiles to occupy the SMs (small models), the input dimension is
    split across a second kernel with an inter-tile reduction
    (Sec. III-C1).
    """
    if out_features < 1:
        raise ValueError("out_features must be >= 1")
    tiles = max(1, out_features // tile_cols)
    split = tiles < gpu.sm_count
    return SBITilePlan(
        output_tiles=tiles,
        split_input_dim=split,
        elements_per_thread=dtype.cacheline_pack,
        kernels=2 if split else 1,
    )


def sbi_bw_efficiency(gpu: GPUSpec, tokens: int, out_features: int, dtype: DType) -> float:
    """Fraction of peak HBM bandwidth achieved by SBI-GeMM.

    The full-cache-line weight layout (Sec. III-C3) keeps reads coalesced
    regardless of batch, so efficiency starts high (~0.87). Two penalties
    apply: the two-kernel input split (extra partial-result round trip)
    for small output dims, and a mild occupancy ramp when output tiles
    barely cover the SMs.
    """
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    plan = sbi_tile_plan(gpu, out_features, dtype)
    eff = 0.87
    if dtype is DType.INT8:
        # One-byte elements leave cache lines harder to fill even with the
        # M=4 packing; measured INT8 kernels land below their FP16 twins.
        eff *= 0.70
    if plan.split_input_dim:
        eff *= 0.93
    occupancy = min(1.0, plan.output_tiles * plan.kernels / gpu.sm_count)
    eff *= 0.75 + 0.25 * occupancy
    # Very large token counts leave the SBI regime; the caller should have
    # switched to cuBLAS, but degrade gracefully rather than extrapolate.
    if tokens > 64:
        eff *= 64.0 / tokens
    return eff
