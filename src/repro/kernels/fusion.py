"""Deep-Fusion: partition an operator chain into fused kernel regions.

Sec. III-B: operator fusion in mainstream stacks stops at element-wise
ops because reductions, transposes and GeMMs create cross-thread-block
dependencies. Deep-Fusion tiles the iteration space along dimensions with
no cross-tile dependency and fuses any adjacent ops whose tiles map
one-to-one. Applied to a transformer layer (Fig. 1c) this yields four
main regions: (1) input layer-norm + QKV GeMM (+bias), (2) transpose +
attention (+softmax), (3) post-attention layer-norm + intermediate GeMM
(+activation), (4) bias + residual add.

A :class:`FusedRegion`'s cost differs from the sum of its ops in exactly
two ways, both modeled here:

* one kernel launch instead of one per op,
* interior activations live in registers/shared memory, so only the
  region's boundary activation bytes (plus all weight bytes) touch HBM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ops import Op, OpKind

__all__ = ["FusionStrategy", "FusedRegion", "partition"]


class FusionStrategy(enum.Enum):
    """How aggressively an implementation fuses (coarse taxonomy of
    Sec. II-d related work plus this paper's Deep-Fusion)."""

    NONE = "none"  # every op is its own kernel (PyTorch/Megatron eager)
    ELEMENTWISE = "elementwise"  # epilogue-fuse elementwise ops (FT, XLA, TVM)
    ATTENTION = "attention"  # ELEMENTWISE + one fused attention kernel (E.T.)
    DEEP = "deep"  # Deep-Fusion tile-level regions (this paper)


@dataclass(frozen=True)
class FusedRegion:
    """A contiguous run of ops executed as a single kernel."""

    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a fused region needs at least one op")

    @property
    def name(self) -> str:
        """Human-readable label (first+last op)."""
        if len(self.ops) == 1:
            return self.ops[0].name
        return f"{self.ops[0].name}+...+{self.ops[-1].name}[{len(self.ops)}]"

    @property
    def flops(self) -> float:
        """Total math work of the region."""
        return sum(op.flops for op in self.ops)

    @property
    def weight_bytes(self) -> float:
        """Weights always stream from HBM, fused or not."""
        return sum(op.weight_bytes for op in self.ops)

    @property
    def act_bytes(self) -> float:
        """Boundary activation traffic: first op's input + last op's output.

        Interior producer/consumer tensors stay on-chip (Sec. III-B).
        """
        return self.ops[0].act_in_bytes + self.ops[-1].act_out_bytes

    @property
    def hbm_bytes(self) -> float:
        """Total HBM traffic of the region."""
        return self.weight_bytes + self.act_bytes

    @property
    def unfused_bytes(self) -> float:
        """HBM traffic if each op ran standalone — the savings baseline."""
        return sum(op.total_bytes for op in self.ops)

    @property
    def contains_gemm(self) -> bool:
        """True when the region includes a GeMM/attention contraction."""
        return any(op.is_gemm for op in self.ops)

    def saved_bytes(self) -> float:
        """Activation traffic eliminated by fusing."""
        return self.unfused_bytes - self.hbm_bytes


def _fusable(
    region: list[Op], cur: Op, strategy: FusionStrategy, small_batch: bool
) -> bool:
    """Decide whether ``cur`` joins the open ``region``."""
    prev = region[-1]
    if not prev.can_fuse_with(cur):
        return False
    if strategy is FusionStrategy.NONE:
        return False
    if strategy is FusionStrategy.ELEMENTWISE:
        # Classic epilogue fusion: elementwise op rides on its producer.
        return cur.kind is OpKind.ELEMENTWISE
    if strategy is FusionStrategy.ATTENTION:
        attn_kinds = (OpKind.ATTENTION, OpKind.TRANSPOSE, OpKind.REDUCTION)
        if cur.kind is OpKind.ELEMENTWISE:
            return True
        # Fuse within the attention block: transpose/scores/softmax/context.
        return prev.kind in attn_kinds and cur.kind in attn_kinds
    if strategy is FusionStrategy.DEEP:
        region_has_gemm = any(op.kind is OpKind.GEMM for op in region)
        if cur.kind is OpKind.GEMM:
            # A weight GeMM joins a region via the SM-broadcast trick of
            # Sec. III-D: the region's prior work (layer-norm / bias) is
            # replicated across SMs so the GeMM schedule needs no
            # inter-SM communication. That only pays off at very small
            # batch, and only when the prior work is cheaply replicable
            # (reductions/elementwise) with at most one GeMM per region.
            cheap = all(
                op.kind in (OpKind.REDUCTION, OpKind.ELEMENTWISE) for op in region
            )
            return small_batch and not region_has_gemm and cheap
        if region_has_gemm:
            return cur.kind is OpKind.ELEMENTWISE  # GeMM epilogue only
        # No weight GeMM yet: transposes, attention contractions,
        # reductions and elementwise ops all tile along token/head dims
        # and fuse freely (the "transposition plus attention" region).
        return True
    raise AssertionError(f"unhandled strategy {strategy}")


def partition(
    ops: list[Op], strategy: FusionStrategy, *, small_batch: bool = True
) -> list[FusedRegion]:
    """Greedily partition an op chain into fused regions.

    ``small_batch`` enables GeMM fusion under DEEP (the SM-broadcast trick
    of Sec. III-D is only profitable at very small batch; the large-batch
    kernel keeps cuBLAS GeMMs unfused).
    """
    if not ops:
        return []
    regions: list[list[Op]] = [[ops[0]]]
    for op in ops[1:]:
        if _fusable(regions[-1], op, strategy, small_batch):
            regions[-1].append(op)
        else:
            regions.append([op])
    return [FusedRegion(tuple(r)) for r in regions]
