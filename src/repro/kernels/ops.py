"""Operator descriptions for the kernel cost model.

A transformer layer is described as a linear chain of :class:`Op` records
capturing exactly the quantities Sec. III reasons about:

* ``flops`` — math work,
* ``weight_bytes`` — parameter traffic (the term that lower-bounds
  small-batch latency),
* ``act_in_bytes`` / ``act_out_bytes`` — activation traffic between HBM
  and the cores (what Deep-Fusion removes for fused intermediates),
* ``tile_dims`` — iteration-space dimensions along which the op can be
  tiled with *no cross-tile data dependency* (Sec. III-B's fusion
  legality condition),
* ``kind`` — operator class, used by fusion strategies to decide region
  boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpKind", "Op", "TOKEN", "HEAD", "HIDDEN", "SEQUENCE"]

# Canonical iteration-space dimension names.
TOKEN = "token"  # one tile per token (batch x seq position)
HEAD = "head"  # one tile per attention head
HIDDEN = "hidden"  # one tile per slice of the hidden/output dimension
SEQUENCE = "sequence"  # key/value sequence axis (reduction dim of attention)


class OpKind(enum.Enum):
    """Operator classes of a transformer layer (Sec. III-A/B)."""

    GEMM = "gemm"
    ELEMENTWISE = "elementwise"  # bias add, residual add, activation, quantize
    REDUCTION = "reduction"  # layer-norm, softmax (reduce within a tile)
    TRANSPOSE = "transpose"  # head-wise data-layout transformation
    ATTENTION = "attention"  # batched QK^T / PV contraction


@dataclass(frozen=True)
class Op:
    """One logical operator with its resource footprint.

    ``act_in_bytes``/``act_out_bytes`` are the activation bytes the op
    would exchange with global memory *if executed as a standalone
    kernel*. When ops fuse, interior activations stay in registers or
    shared memory and only the region's boundary activations count
    (Sec. III-B, last paragraph).
    """

    name: str
    kind: OpKind
    flops: float
    weight_bytes: float
    act_in_bytes: float
    act_out_bytes: float
    tile_dims: frozenset = field(default_factory=frozenset)
    tile_local_dep: bool = True  # consumer tile depends on exactly one producer tile

    def __post_init__(self) -> None:
        for f in ("flops", "weight_bytes", "act_in_bytes", "act_out_bytes"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0 for op {self.name!r}")

    @property
    def total_bytes(self) -> float:
        """All global-memory traffic of the op run standalone."""
        return self.weight_bytes + self.act_in_bytes + self.act_out_bytes

    @property
    def is_gemm(self) -> bool:
        """True for dense matrix multiplies (incl. attention contractions)."""
        return self.kind in (OpKind.GEMM, OpKind.ATTENTION)

    @property
    def is_weight_gemm(self) -> bool:
        """True only for parameter GeMMs (the weight-streaming ops that
        dominate small-batch latency)."""
        return self.kind is OpKind.GEMM

    def can_fuse_with(self, other: "Op") -> bool:
        """Deep-Fusion legality (Sec. III-B): two adjacent ops fuse when
        they share a tile dimension free of cross-tile dependencies and the
        producer->consumer mapping is tile-local."""
        return bool(self.tile_dims & other.tile_dims) and self.tile_local_dep
