"""CUDA-graph capture/replay, functionally (Sec. III-D).

The paper "store[s] the trace of the kernels the first time they are
launched ... and create[s] the computation-graph that can be reused for
the following requests". The performance effect (launch elimination)
lives in the cost model; this module reproduces the *mechanism* and its
correctness constraint: a captured graph replays a fixed kernel sequence
against fixed shapes, so replay must verify the request matches the
capture and fall back to re-capture when it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["GraphMismatch", "CapturedGraph", "GraphRunner"]


class GraphMismatch(RuntimeError):
    """Replay was attempted with shapes the graph was not captured for."""


@dataclass(frozen=True)
class _Node:
    """One captured kernel invocation."""

    name: str
    fn: Callable
    arg_shapes: tuple


@dataclass
class CapturedGraph:
    """An ordered kernel sequence bound to its capture-time shapes."""

    input_shape: tuple
    nodes: list[_Node] = field(default_factory=list)
    replays: int = 0

    def replay(self, x: np.ndarray) -> np.ndarray:
        """Re-run the captured kernel sequence on a same-shaped input."""
        if x.shape != self.input_shape:
            raise GraphMismatch(
                f"graph captured for {self.input_shape}, got {x.shape}"
            )
        out = x
        for node in self.nodes:
            out = node.fn(out)
        self.replays += 1
        return out


class GraphRunner:
    """Capture-once / replay-forever wrapper around a kernel pipeline.

    ``stages`` is a list of ``(name, fn)`` pairs, each ``fn`` mapping one
    array to the next (a fused-region kernel). The first call with a
    given input shape captures; subsequent same-shape calls replay the
    captured sequence with no per-stage dispatch. Distinct shapes capture
    distinct graphs (as real engines do per bucket).
    """

    def __init__(self, stages: list[tuple[str, Callable]]) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = stages
        self._graphs: dict[tuple, CapturedGraph] = {}
        self.captures = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Run the pipeline, capturing on first sight of this shape."""
        key = x.shape
        graph = self._graphs.get(key)
        if graph is None:
            graph = self._capture(x)
            self._graphs[key] = graph
            # The capture pass also produces the output.
            return graph.replay(x)
        return graph.replay(x)

    def _capture(self, x: np.ndarray) -> CapturedGraph:
        graph = CapturedGraph(input_shape=x.shape)
        probe = x
        for name, fn in self.stages:
            out = fn(probe)
            if not isinstance(out, np.ndarray):
                raise TypeError(f"stage {name!r} must return an ndarray")
            graph.nodes.append(_Node(name=name, fn=fn,
                                     arg_shapes=(probe.shape,)))
            probe = out
        self.captures += 1
        return graph

    def graph_for(self, shape: tuple) -> CapturedGraph:
        """The captured graph for ``shape`` (KeyError if never captured)."""
        return self._graphs[shape]

    @property
    def num_graphs(self) -> int:
        """Distinct shape buckets captured so far."""
        return len(self._graphs)
