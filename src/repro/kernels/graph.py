"""Build the operator chain of a transformer layer.

The chain mirrors Fig. 1(c): input layer-norm, QKV GeMM (+bias), head
transpose, attention (scores, softmax, context), output projection,
bias+residual, post-attention layer-norm, intermediate (4h) GeMM, GeLU,
output (4h -> h) GeMM, bias+residual. Every op carries its flops and byte
footprint so the cost model and the fusion partitioner can act on it.

Shapes are parameterized the way inference sees them (Sec. IV-B):

* ``batch`` sequences, each contributing ``tokens_per_seq`` *new* tokens
  this step (the full prompt during prompt processing, 1 during token
  generation),
* ``kv_len`` total attention span per sequence (prompt + generated so
  far) — the KV-cache read that training-oriented kernels do not model,
* ``tp_degree`` tensor-parallel ways: weights, heads and attention work
  divide by it; activations at region boundaries do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType
from .ops import HEAD, HIDDEN, Op, OpKind, TOKEN

__all__ = ["LayerShape", "transformer_layer_ops", "moe_expert_ffn_ops"]


@dataclass(frozen=True)
class LayerShape:
    """Shape of one transformer-layer invocation on one tensor-parallel rank."""

    hidden: int
    heads: int
    batch: int
    tokens_per_seq: int
    kv_len: int
    dtype: DType = DType.FP16
    tp_degree: int = 1
    ffn_mult: int = 4

    def __post_init__(self) -> None:
        if min(self.hidden, self.heads, self.batch, self.tokens_per_seq) < 1:
            raise ValueError("hidden, heads, batch and tokens_per_seq must be >= 1")
        if self.kv_len < self.tokens_per_seq:
            raise ValueError("kv_len must include the tokens being processed")
        if self.hidden % self.heads:
            raise ValueError("hidden must be divisible by heads")
        if self.tp_degree < 1 or self.heads % self.tp_degree:
            raise ValueError("heads must be divisible by tp_degree")

    @property
    def tokens(self) -> int:
        """Total new tokens processed in this invocation."""
        return self.batch * self.tokens_per_seq

    @property
    def act_bytes(self) -> float:
        """Bytes of one full hidden-state activation tensor."""
        return self.tokens * self.hidden * self.dtype.itemsize

    @property
    def head_dim(self) -> int:
        """Per-head feature dimension."""
        return self.hidden // self.heads


def _gemm(
    name: str,
    shape: LayerShape,
    in_features: int,
    out_features: int,
    *,
    weight_dtype: DType | None = None,
    shard_out: bool = True,
) -> Op:
    """A linear layer GeMM on one TP rank.

    Megatron-style sharding (Sec. IV-A): column-parallel layers shard the
    output dimension, row-parallel layers shard the input dimension; both
    divide weights and flops by ``tp_degree``.
    """
    tp = shape.tp_degree
    wdtype = weight_dtype or shape.dtype
    w_bytes = in_features * out_features / tp * wdtype.itemsize
    t = shape.tokens
    local_out = out_features // tp if shard_out else out_features
    local_in = in_features if shard_out else in_features // tp
    # A row-parallel GeMM (shard_out=False) under TP emits *partial sums*
    # that an all-reduce must combine before any consumer runs, so its
    # downstream fusion is illegal (the paper's region 4, bias+residual,
    # is a separate kernel for exactly this reason).
    downstream_fusable = shard_out or tp == 1
    return Op(
        name=name,
        kind=OpKind.GEMM,
        flops=2.0 * t * in_features * out_features / tp,
        weight_bytes=w_bytes,
        act_in_bytes=t * local_in * shape.dtype.itemsize,
        act_out_bytes=t * local_out * shape.dtype.itemsize,
        tile_dims=frozenset({TOKEN, HIDDEN}),
        tile_local_dep=downstream_fusable,
    )


def transformer_layer_ops(shape: LayerShape) -> list[Op]:
    """Operator chain of one dense transformer decoder layer (Fig. 1c)."""
    h, tp = shape.hidden, shape.tp_degree
    t = shape.tokens
    d = shape.dtype.itemsize
    local_heads = shape.heads // tp
    act = shape.act_bytes
    local_attn_act = t * (h // tp) * d

    ops: list[Op] = []

    ops.append(
        Op(
            "input_layernorm",
            OpKind.REDUCTION,
            flops=8.0 * t * h,
            weight_bytes=2 * h * d,
            act_in_bytes=act,
            act_out_bytes=act,
            tile_dims=frozenset({TOKEN}),
        )
    )
    ops.append(_gemm("qkv_gemm", shape, h, 3 * h))
    ops.append(
        Op(
            "qkv_bias",
            OpKind.ELEMENTWISE,
            flops=3.0 * t * h / tp,
            weight_bytes=3 * h / tp * d,
            act_in_bytes=3 * local_attn_act,
            act_out_bytes=3 * local_attn_act,
            tile_dims=frozenset({TOKEN, HIDDEN}),
        )
    )
    ops.append(
        Op(
            "head_transpose",
            OpKind.TRANSPOSE,
            flops=0.0,
            weight_bytes=0.0,
            act_in_bytes=3 * local_attn_act,
            act_out_bytes=3 * local_attn_act,
            tile_dims=frozenset({TOKEN, HEAD}),
        )
    )
    # Attention contractions: QK^T (t x kv per head) then scores @ V. The
    # KV-cache of kv_len tokens is re-read each step (Sec. II-d, IV-B).
    kv_bytes = 2.0 * shape.batch * shape.kv_len * (h // tp) * d
    score_elems = shape.batch * local_heads * shape.tokens_per_seq * shape.kv_len
    ops.append(
        Op(
            "attention_scores",
            OpKind.ATTENTION,
            flops=2.0 * shape.batch * local_heads * shape.tokens_per_seq
            * shape.kv_len * shape.head_dim,
            weight_bytes=0.0,
            act_in_bytes=local_attn_act + kv_bytes / 2,
            act_out_bytes=score_elems * d,
            tile_dims=frozenset({TOKEN, HEAD}),
        )
    )
    ops.append(
        Op(
            "softmax",
            OpKind.REDUCTION,
            flops=5.0 * score_elems,
            weight_bytes=0.0,
            act_in_bytes=score_elems * d,
            act_out_bytes=score_elems * d,
            tile_dims=frozenset({TOKEN, HEAD}),
        )
    )
    ops.append(
        Op(
            "attention_context",
            OpKind.ATTENTION,
            flops=2.0 * shape.batch * local_heads * shape.tokens_per_seq
            * shape.kv_len * shape.head_dim,
            weight_bytes=0.0,
            act_in_bytes=score_elems * d + kv_bytes / 2,
            act_out_bytes=local_attn_act,
            tile_dims=frozenset({TOKEN, HEAD}),
        )
    )
    ops.append(
        Op(
            "context_transpose",
            OpKind.TRANSPOSE,
            flops=0.0,
            weight_bytes=0.0,
            act_in_bytes=local_attn_act,
            act_out_bytes=local_attn_act,
            tile_dims=frozenset({TOKEN, HEAD}),
        )
    )
    ops.append(_gemm("attn_output_gemm", shape, h, h, shard_out=False))
    # The residual-sum output feeds two consumers (the next layer-norm and
    # the following residual hop), so it must materialize in HBM: no
    # downstream fusion (this is why bias+residual is its own region, the
    # paper's region 4).
    ops.append(
        Op(
            "attn_bias_residual",
            OpKind.ELEMENTWISE,
            flops=2.0 * t * h,
            weight_bytes=h * d,
            act_in_bytes=2 * act,  # projected output + residual stream
            act_out_bytes=act,
            tile_dims=frozenset({TOKEN, HIDDEN}),
            tile_local_dep=False,
        )
    )
    ops.append(
        Op(
            "post_attn_layernorm",
            OpKind.REDUCTION,
            flops=8.0 * t * h,
            weight_bytes=2 * h * d,
            act_in_bytes=act,
            act_out_bytes=act,
            tile_dims=frozenset({TOKEN}),
        )
    )
    ops.append(_gemm("mlp_h_to_4h_gemm", shape, h, shape.ffn_mult * h))
    ops.append(
        Op(
            "gelu_bias",
            OpKind.ELEMENTWISE,
            flops=9.0 * t * shape.ffn_mult * h / tp,
            weight_bytes=shape.ffn_mult * h / tp * d,
            act_in_bytes=t * shape.ffn_mult * h / tp * d,
            act_out_bytes=t * shape.ffn_mult * h / tp * d,
            tile_dims=frozenset({TOKEN, HIDDEN}),
        )
    )
    ops.append(_gemm("mlp_4h_to_h_gemm", shape, shape.ffn_mult * h, h, shard_out=False))
    ops.append(
        Op(
            "mlp_bias_residual",
            OpKind.ELEMENTWISE,
            flops=2.0 * t * h,
            weight_bytes=h * d,
            act_in_bytes=2 * act,
            act_out_bytes=act,
            tile_dims=frozenset({TOKEN, HIDDEN}),
            tile_local_dep=False,
        )
    )
    return ops


def moe_expert_ffn_ops(shape: LayerShape, *, expert_slicing: int = 1) -> list[Op]:
    """Operator chain of one expert's FFN on one expert-parallel rank.

    Expert parameters may additionally be sliced ``expert_slicing`` ways
    ("expert-slicing", Sec. V-A / Table II); like tensor slicing it divides
    weights and flops.
    """
    if expert_slicing < 1:
        raise ValueError("expert_slicing must be >= 1")
    h = shape.hidden
    t = shape.tokens
    d = shape.dtype.itemsize
    es = expert_slicing
    f = shape.ffn_mult
    return [
        _gemm(
            "expert_h_to_4h",
            LayerShape(
                hidden=h,
                heads=shape.heads,
                batch=shape.batch,
                tokens_per_seq=shape.tokens_per_seq,
                kv_len=shape.kv_len,
                dtype=shape.dtype,
                tp_degree=es,
                ffn_mult=f,
            ),
            h,
            f * h,
        ),
        Op(
            "expert_gelu",
            OpKind.ELEMENTWISE,
            flops=9.0 * t * f * h / es,
            weight_bytes=f * h / es * d,
            act_in_bytes=t * f * h / es * d,
            act_out_bytes=t * f * h / es * d,
            tile_dims=frozenset({TOKEN, HIDDEN}),
        ),
        _gemm(
            "expert_4h_to_h",
            LayerShape(
                hidden=h,
                heads=shape.heads,
                batch=shape.batch,
                tokens_per_seq=shape.tokens_per_seq,
                kv_len=shape.kv_len,
                dtype=shape.dtype,
                tp_degree=es,
                ffn_mult=f,
            ),
            f * h,
            h,
            shard_out=False,
        ),
    ]
