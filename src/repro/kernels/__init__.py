"""Inference-optimized transformer kernels (Sec. III): op graphs,
Deep-Fusion partitioning, SBI-GeMM models, the roofline cost model,
functional NumPy kernels and INT8 quantization."""

from .analysis import RegionAnalysis, analyze_layer, crossover_batch, machine_balance
from .costmodel import KernelCostModel, LayerCost, RegionTime
from .cuda_graph import CapturedGraph, GraphMismatch, GraphRunner
from .fusion import FusedRegion, FusionStrategy, partition
from .gemm import (
    GemmKind,
    SBITilePlan,
    cublas_bw_efficiency,
    cublas_compute_efficiency,
    cutlass_int8_compute_efficiency,
    sbi_bw_efficiency,
    sbi_tile_plan,
)
from .graph import LayerShape, moe_expert_ffn_ops, transformer_layer_ops
from .ops import HEAD, HIDDEN, Op, OpKind, SEQUENCE, TOKEN
from .profiles import (
    DEEPSPEED_FP16,
    DEEPSPEED_INT8,
    ET_FP16,
    FASTER_TRANSFORMER_FP16,
    MEGATRON_FP16,
    PROFILE_REGISTRY,
    PYTORCH_FP16,
    ImplementationProfile,
)
from .quant import (
    QuantizedTensor,
    dequantize,
    int8_linear,
    quantization_error_bound,
    quantize_symmetric,
)

__all__ = [
    "DEEPSPEED_FP16",
    "DEEPSPEED_INT8",
    "ET_FP16",
    "FASTER_TRANSFORMER_FP16",
    "FusedRegion",
    "FusionStrategy",
    "GemmKind",
    "HEAD",
    "HIDDEN",
    "ImplementationProfile",
    "CapturedGraph",
    "RegionAnalysis",
    "analyze_layer",
    "crossover_batch",
    "machine_balance",
    "GraphMismatch",
    "GraphRunner",
    "KernelCostModel",
    "LayerCost",
    "LayerShape",
    "MEGATRON_FP16",
    "Op",
    "OpKind",
    "PROFILE_REGISTRY",
    "PYTORCH_FP16",
    "QuantizedTensor",
    "RegionTime",
    "SBITilePlan",
    "SEQUENCE",
    "TOKEN",
    "cublas_bw_efficiency",
    "cublas_compute_efficiency",
    "cutlass_int8_compute_efficiency",
    "dequantize",
    "int8_linear",
    "moe_expert_ffn_ops",
    "partition",
    "quantization_error_bound",
    "quantize_symmetric",
    "sbi_bw_efficiency",
    "sbi_tile_plan",
    "transformer_layer_ops",
]
