"""The user-facing inference engine facade.

``InferenceEngine`` is the library's front door: give it a model name (or
config) and a cluster, and it plans the parallelism (Sec. IV), builds the
latency model under the chosen implementation profile (Sec. III), and
answers latency/throughput questions. ``MoEInferenceEngine`` does the
same for the sparse models of Table II (Sec. V).

Functional generation (actually producing tokens with the NumPy model)
is exposed through :meth:`InferenceEngine.build_functional_model` for
small configurations; performance estimation works at any scale.
"""

from __future__ import annotations


import numpy as np

from ..hardware.topology import ClusterSpec, dgx_a100_cluster
from ..kernels.profiles import DEEPSPEED_FP16, ImplementationProfile
from ..model.config import MOE_PARALLELISM, ModelConfig, MoEParallelism, get_model
from ..model.dense import DenseTransformer
from ..parallel.planner import ParallelPlan, plan_dense
from ..rng import SeedLike
from .latency import DenseLatencyModel, LatencyReport, Workload
from .moe import MoELatencyModel, MoEStepBreakdown
from .throughput import ThroughputPoint, best_throughput

__all__ = ["InferenceEngine", "MoEInferenceEngine"]


class InferenceEngine:
    """Plan and evaluate dense transformer inference on a cluster."""

    def __init__(
        self,
        model: str | ModelConfig,
        cluster: ClusterSpec | None = None,
        *,
        profile: ImplementationProfile = DEEPSPEED_FP16,
        tp: int | None = None,
        pp: int | None = None,
        plan_batch: int = 1,
        plan_seq: int = 2048,
        hybrid_prompt_factor: int = 1,
        lockstep_generation: bool = False,
    ) -> None:
        self.config = get_model(model) if isinstance(model, str) else model
        self.cluster = cluster or dgx_a100_cluster()
        if tp is None or pp is None:
            plan = plan_dense(self.config, self.cluster, batch=plan_batch,
                              seq_len=plan_seq)
            tp = tp if tp is not None else plan.tp
            pp = pp if pp is not None else plan.pp
            self.plan: ParallelPlan | None = plan
        else:
            self.plan = None
        self.profile = profile
        self.latency_model = DenseLatencyModel(
            self.config,
            self.cluster,
            tp=tp,
            pp=pp,
            profile=profile,
            hybrid_prompt_factor=hybrid_prompt_factor,
            lockstep_generation=lockstep_generation,
        )

    @property
    def tp(self) -> int:
        """Tensor-parallel degree in use."""
        return self.latency_model.tp

    @property
    def pp(self) -> int:
        """Pipeline-parallel degree in use."""
        return self.latency_model.pp

    @property
    def num_gpus(self) -> int:
        """GPUs occupied by this deployment."""
        return self.latency_model.num_gpus

    def estimate(
        self, *, batch: int, prompt_len: int, gen_tokens: int
    ) -> LatencyReport:
        """Latency report for one workload."""
        return self.latency_model.estimate(
            Workload(batch=batch, prompt_len=prompt_len, gen_tokens=gen_tokens)
        )

    def best_throughput(
        self, *, prompt_len: int, gen_tokens: int, offload_activations: bool = False
    ) -> ThroughputPoint:
        """Best-batch throughput sweep (the Fig. 8 methodology)."""
        return best_throughput(
            self.latency_model,
            prompt_len=prompt_len,
            gen_tokens=gen_tokens,
            offload_activations=offload_activations,
        )

    def build_functional_model(self, *, seed: SeedLike = 0,
                               dtype=np.float64) -> DenseTransformer:
        """Materialize the runnable NumPy model (small configs only: the
        weight arrays are allocated for real)."""
        if self.config.total_params > 2e8:
            raise ValueError(
                f"{self.config.name} has {self.config.total_params / 1e9:.1f}B "
                "params; materializing that in NumPy is not what you want. "
                "Use a small ModelConfig for functional runs."
            )
        return DenseTransformer(self.config, seed=seed, dtype=dtype)


class MoEInferenceEngine:
    """Plan and evaluate sparse (MoE) transformer inference (Sec. V)."""

    def __init__(
        self,
        model: str | ModelConfig,
        cluster: ClusterSpec | None = None,
        *,
        parallelism: MoEParallelism | None = None,
        optimized: bool = True,
    ) -> None:
        self.config = get_model(model) if isinstance(model, str) else model
        if self.config.moe is None:
            raise ValueError(f"{self.config.name} is not an MoE model")
        if parallelism is None:
            if self.config.name not in MOE_PARALLELISM:
                raise ValueError(
                    f"no Table II parallelism recorded for {self.config.name}; "
                    "pass `parallelism` explicitly"
                )
            parallelism = MOE_PARALLELISM[self.config.name]
        self.parallelism = parallelism
        self.cluster = cluster or dgx_a100_cluster(
            max(1, parallelism.num_gpus // 8)
        )
        self.model = MoELatencyModel(
            self.config, self.cluster, parallelism, optimized=optimized
        )

    def token_latency(self, *, batch: int = 8, kv_len: int = 228) -> float:
        """Per generated-token latency (the Fig. 7 metric)."""
        return self.model.token_latency(batch, kv_len)

    def step_breakdown(self, *, batch: int = 8, kv_len: int = 228) -> MoEStepBreakdown:
        """Component decomposition of one token step."""
        return self.model.token_step(batch, kv_len)

    def throughput_per_gpu(self, *, batch: int = 8, kv_len: int = 228) -> float:
        """Generated tokens/s/GPU (Fig. 7's throughput axis)."""
        lat = self.token_latency(batch=batch, kv_len=kv_len)
        return batch / lat / self.parallelism.num_gpus
