"""Deployment auto-tuning: pick TP/PP/batch/schedule for a workload.

The paper frames production inference as throughput maximization *under
a latency SLA* (Sec. I, "Throughput Challenges"). This tuner searches
the deployment space the paper's systems expose — tensor-parallel degree
(powers of two dividing the head count), pipeline depth, hybrid-schedule
prompt factor, and batch size — and returns the best throughput whose
per-token latency meets the SLA.

:func:`tune_serving_deployment` lifts the same search to the serving
level: instead of a single steady-state workload, it replays an arrival
trace through :func:`~repro.engine.serving_sim.simulate_serving` (the
shared-scheduler analytical backend) for every candidate and optimizes
sustained tokens/sec subject to a tail time-to-first-token SLA — the
quantity an operator actually provisions against.
:func:`repro.fleet.tuning.tune_fleet_deployment` extends the ladder one
more rung, splitting a GPU budget between tensor-parallel scale-up and
replica scale-out (it shares :func:`_tp_candidates` with this module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig, MoEParallelism
from .costs import DenseStepCost, MoEStepCost
from .latency import DenseLatencyModel, Workload
from .moe import MoELatencyModel
from .offload import max_batch_size, moe_max_batch_size
from .serving_sim import WorkloadTrace, simulate_serving
from .throughput import candidate_batches

__all__ = [
    "TuningResult",
    "ServingTuningResult",
    "tune_dense_deployment",
    "tune_serving_deployment",
]


@dataclass(frozen=True)
class TuningResult:
    """Winning configuration of one tuning run."""

    tp: int
    pp: int
    batch: int
    hybrid_prompt_factor: int
    token_latency: float
    tokens_per_second: float
    num_gpus: int

    @property
    def tokens_per_second_per_gpu(self) -> float:
        """Cost-normalized throughput."""
        return self.tokens_per_second / self.num_gpus


def _tp_candidates(config: ModelConfig, cluster: ClusterSpec, max_gpus: int):
    """Power-of-two TP degrees that divide the head count and fit one
    node — shared with the fleet tuner (:mod:`repro.fleet.tuning`)."""
    tp = 1
    while tp <= min(cluster.node.gpus_per_node, max_gpus):
        if config.heads % tp == 0:
            yield tp
        tp *= 2


def _moe_parallelism_candidates(
    config: ModelConfig, cluster: ClusterSpec, max_gpus: int
):
    """Table II-shaped deployments fitting ``max_gpus``: each tensor
    (MP) degree paired with the largest power-of-two expert-parallel
    degree ``>= mp`` the budget allows (``num_gpus = ep_degree``, the
    MP groups nest inside the EP ranks, Sec. V-A)."""
    for mp in _tp_candidates(config, cluster, max_gpus):
        ep, best_ep = 1, None
        while ep <= min(config.moe.num_experts, max_gpus):
            if ep >= mp:
                best_ep = ep
            ep *= 2
        if best_ep is None:
            continue
        par = MoEParallelism(mp_degree=mp, ep_degree=best_ep,
                             expert_slicing=1, num_gpus=best_ep)
        if par.num_gpus <= cluster.num_gpus:
            yield par


#: Expert replication factors the MoE sweep tries on skewed traces.
_REPLICATION_CANDIDATES = (1, 2, 4)


def _skewed_moe_costs(config, model, par, *, expert_skew: float, cap: int):
    """Yield ``(replication, costs)`` for one MoE deployment on a skewed
    trace: replication 1 prices the uniform placement under the skew's
    straggler ratio; higher factors replicate the hot experts
    (:func:`~repro.moe_placement.plan_placement`) and carry a prefetch
    hit rate calibrated against a short synthetic gate stream."""
    from ..moe_placement import (
        SkewedDispatchSpec,
        calibrated_dispatch,
        plan_placement,
        synthesize_gate_stream,
        uniform_placement,
        zipf_expert_probs,
    )

    num_experts = config.moe.num_experts
    top_k = config.moe.top_k
    probs = zipf_expert_probs(num_experts, expert_skew, seed=0)
    stream = synthesize_gate_stream(32, max(8, cap) * top_k, probs, seed=1)
    for replication in _REPLICATION_CANDIDATES:
        if replication > par.ep_degree:
            break
        if replication == 1:
            spec = SkewedDispatchSpec(
                probs=probs,
                placement=uniform_placement(num_experts, par.ep_degree),
                top_k=top_k,
            )
        else:
            plan = plan_placement(probs, par.ep_degree,
                                  replication=replication)
            spec = calibrated_dispatch(
                probs, plan, stream, top_k=top_k,
                expert_fetch_time=model.expert_fetch_time(),
            )
        yield replication, MoEStepCost(model, skew=spec)


def _serving_cost_candidates(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    max_gpus: int,
    representative_kv: int,
    seq: int,
    expert_skew: float | None = None,
):
    """Yield ``(tp, num_gpus, batch_cap, costs, replication)`` candidates.

    Dense models sweep TP with a compat-mode :class:`DenseStepCost`
    (``representative_kv`` preserves the pre-cost-model tuner numbers
    bit-for-bit); MoE models sweep the MP degree of Table II-shaped
    deployments priced by :class:`MoEStepCost` at true KV lengths. When
    the trace declares an ``expert_skew``, each MoE deployment is
    additionally swept over expert replication factors with skew-aware
    dispatch pricing (the paper's uniform assumption is the
    ``replication=1`` row). Shared by :func:`tune_serving_deployment`
    and :func:`repro.fleet.tuning.tune_fleet_deployment`.
    """
    if config.moe is None:
        for tp in _tp_candidates(config, cluster, max_gpus):
            cap = max_batch_size(config, cluster, tp=tp, pp=1, seq_len=seq)
            if cap < 1:
                continue
            model = DenseLatencyModel(config, cluster, tp=tp)
            yield tp, tp, cap, DenseStepCost(
                model, representative_kv=representative_kv), 1
    else:
        for par in _moe_parallelism_candidates(config, cluster, max_gpus):
            cap = moe_max_batch_size(config, cluster, par, seq_len=seq)
            if cap < 1:
                continue
            model = MoELatencyModel(config, cluster, par, optimized=True)
            if expert_skew is None:
                yield par.mp_degree, par.num_gpus, cap, MoEStepCost(model), 1
                continue
            for replication, costs in _skewed_moe_costs(
                    config, model, par, expert_skew=expert_skew, cap=cap):
                yield par.mp_degree, par.num_gpus, cap, costs, replication


def tune_dense_deployment(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    prompt_len: int,
    gen_tokens: int,
    latency_sla: float | None = None,
    max_gpus: int | None = None,
    hybrid_factors: tuple[int, ...] = (1, 2, 4),
) -> TuningResult:
    """Search TP x PP x batch x hybrid-factor for the best SLA-compliant
    throughput.

    ``latency_sla`` bounds the steady-state per-token latency in seconds
    (None = throughput-oriented, no bound). Raises ``ValueError`` when no
    feasible configuration exists.
    """
    if prompt_len < 1 or gen_tokens < 1:
        raise ValueError("prompt_len and gen_tokens must be >= 1")
    max_gpus = cluster.num_gpus if max_gpus is None else max_gpus
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    seq = prompt_len + gen_tokens

    best: TuningResult | None = None
    for tp in _tp_candidates(config, cluster, max_gpus):
        for pp in range(1, max_gpus // tp + 1):
            if pp > config.layers:
                break
            cap = max_batch_size(config, cluster, tp=tp, pp=pp, seq_len=seq)
            if cap < 1:
                continue
            factors = hybrid_factors if pp > 1 else (1,)
            for hf in factors:
                model = DenseLatencyModel(
                    config, cluster, tp=tp, pp=pp, hybrid_prompt_factor=hf
                )
                for batch in candidate_batches(cap):
                    r = model.estimate(
                        Workload(batch=batch, prompt_len=prompt_len,
                                 gen_tokens=gen_tokens)
                    )
                    if latency_sla is not None and r.token_latency > latency_sla:
                        continue
                    cand = TuningResult(
                        tp=tp, pp=pp, batch=batch, hybrid_prompt_factor=hf,
                        token_latency=r.token_latency,
                        tokens_per_second=r.tokens_per_second,
                        num_gpus=tp * pp,
                    )
                    if best is None or (
                        cand.tokens_per_second > best.tokens_per_second
                    ):
                        best = cand
            # Deeper pipelines only pay once shallow ones stop fitting or
            # the SLA binds; keep searching — the space is small.
    if best is None:
        raise ValueError(
            f"no feasible deployment of {config.name} on {cluster.name} "
            f"meets the constraints (sla={latency_sla}, max_gpus={max_gpus})"
        )
    return best


@dataclass(frozen=True)
class ServingTuningResult:
    """Winning serving configuration for one trace."""

    tp: int
    max_batch: int
    policy: str
    tokens_per_second: float
    ttft_p99: float
    latency_p99: float
    num_gpus: int
    replication: int = 1  # expert replication factor (MoE, skewed traces)

    @property
    def tokens_per_second_per_gpu(self) -> float:
        """Cost-normalized sustained throughput."""
        return self.tokens_per_second / self.num_gpus


def tune_serving_deployment(
    config: ModelConfig,
    cluster: ClusterSpec,
    trace: WorkloadTrace,
    *,
    ttft_sla: float | None = None,
    max_gpus: int | None = None,
    policy: str = "fcfs",
) -> ServingTuningResult:
    """Search TP x max_batch for the best trace-level throughput whose
    P99 time-to-first-token meets ``ttft_sla`` (seconds; None = no bound).

    Each candidate replays ``trace`` through the shared-scheduler
    simulator priced by a :class:`~repro.engine.costs.StepCostModel`:
    dense models by :class:`DenseStepCost` over a TP-only
    :class:`DenseLatencyModel` (decode pipelining is not priced at
    serving granularity), MoE models by :class:`MoEStepCost` over Table
    II-shaped MP x EP deployments (``tp`` then reports the MP degree and
    ``num_gpus`` the whole deployment). Raises ``ValueError`` when no
    candidate meets the SLA.
    """
    max_gpus = cluster.num_gpus if max_gpus is None else max_gpus
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    mean_prompt = max(1, round(float(np.mean(
        [r.prompt_len for r in trace.requests]))))
    mean_gen = max(1, round(float(np.mean(
        [r.gen_tokens for r in trace.requests]))))
    seq = max(r.prompt_len + r.gen_tokens for r in trace.requests)

    best: ServingTuningResult | None = None
    for tp, num_gpus, cap, costs, replication in _serving_cost_candidates(
            config, cluster, max_gpus=max_gpus,
            representative_kv=mean_prompt + mean_gen // 2, seq=seq,
            expert_skew=trace.expert_skew):
        for max_batch in candidate_batches(cap):
            rep = simulate_serving(trace, costs=costs, max_batch=max_batch,
                                   policy=policy)
            ttft = rep.ttft_percentile(trace, 99)
            if ttft_sla is not None and ttft > ttft_sla:
                continue
            cand = ServingTuningResult(
                tp=tp, max_batch=max_batch, policy=policy,
                tokens_per_second=rep.tokens_per_second,
                ttft_p99=ttft,
                latency_p99=rep.latency_percentile(trace, 99),
                num_gpus=num_gpus,
                replication=replication,
            )
            if best is None or cand.tokens_per_second > best.tokens_per_second:
                best = cand
    if best is None:
        raise ValueError(
            f"no serving deployment of {config.name} on {cluster.name} "
            f"meets ttft_sla={ttft_sla} within {max_gpus} GPUs"
        )
    return best
