"""Deployment auto-tuning: pick TP/PP/batch/schedule for a workload.

The paper frames production inference as throughput maximization *under
a latency SLA* (Sec. I, "Throughput Challenges"). This tuner searches
the deployment space the paper's systems expose — tensor-parallel degree
(powers of two dividing the head count), pipeline depth, hybrid-schedule
prompt factor, and batch size — and returns the best throughput whose
per-token latency meets the SLA.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig
from .latency import DenseLatencyModel, Workload
from .offload import max_batch_size
from .throughput import candidate_batches

__all__ = ["TuningResult", "tune_dense_deployment"]


@dataclass(frozen=True)
class TuningResult:
    """Winning configuration of one tuning run."""

    tp: int
    pp: int
    batch: int
    hybrid_prompt_factor: int
    token_latency: float
    tokens_per_second: float
    num_gpus: int

    @property
    def tokens_per_second_per_gpu(self) -> float:
        """Cost-normalized throughput."""
        return self.tokens_per_second / self.num_gpus


def _tp_candidates(config: ModelConfig, cluster: ClusterSpec, max_gpus: int):
    tp = 1
    while tp <= min(cluster.node.gpus_per_node, max_gpus):
        if config.heads % tp == 0:
            yield tp
        tp *= 2


def tune_dense_deployment(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    prompt_len: int,
    gen_tokens: int,
    latency_sla: float | None = None,
    max_gpus: int | None = None,
    hybrid_factors: tuple[int, ...] = (1, 2, 4),
) -> TuningResult:
    """Search TP x PP x batch x hybrid-factor for the best SLA-compliant
    throughput.

    ``latency_sla`` bounds the steady-state per-token latency in seconds
    (None = throughput-oriented, no bound). Raises ``ValueError`` when no
    feasible configuration exists.
    """
    if prompt_len < 1 or gen_tokens < 1:
        raise ValueError("prompt_len and gen_tokens must be >= 1")
    max_gpus = cluster.num_gpus if max_gpus is None else max_gpus
    if max_gpus < 1:
        raise ValueError("max_gpus must be >= 1")
    seq = prompt_len + gen_tokens

    best: TuningResult | None = None
    for tp in _tp_candidates(config, cluster, max_gpus):
        for pp in range(1, max_gpus // tp + 1):
            if pp > config.layers:
                break
            cap = max_batch_size(config, cluster, tp=tp, pp=pp, seq_len=seq)
            if cap < 1:
                continue
            factors = hybrid_factors if pp > 1 else (1,)
            for hf in factors:
                model = DenseLatencyModel(
                    config, cluster, tp=tp, pp=pp, hybrid_prompt_factor=hf
                )
                for batch in candidate_batches(cap):
                    r = model.estimate(
                        Workload(batch=batch, prompt_len=prompt_len,
                                 gen_tokens=gen_tokens)
                    )
                    if latency_sla is not None and r.token_latency > latency_sla:
                        continue
                    cand = TuningResult(
                        tp=tp, pp=pp, batch=batch, hybrid_prompt_factor=hf,
                        token_latency=r.token_latency,
                        tokens_per_second=r.tokens_per_second,
                        num_gpus=tp * pp,
                    )
                    if best is None or (
                        cand.tokens_per_second > best.tokens_per_second
                    ):
                        best = cand
            # Deeper pipelines only pay once shallow ones stop fitting or
            # the SLA binds; keep searching — the space is small.
    if best is None:
        raise ValueError(
            f"no feasible deployment of {config.name} on {cluster.name} "
            f"meets the constraints (sla={latency_sla}, max_gpus={max_gpus})"
        )
    return best
