"""Functional generation serving: scheduler-driven continuous batching
with one batched forward per decode step.

Sec. IV-C1's dynamic-queue schedule exists because autoregressive
sequences *terminate independently*: a fixed-batch engine would idle on
finished sequences or stall new ones. This module is the functional
backend of that idea: request lifecycle (queueing, admission into
bounded slots, EOS/length retirement, admission policy) is owned by the
shared :class:`~repro.engine.scheduler.Scheduler` — the same object the
analytical :func:`~repro.engine.serving_sim.simulate_serving` replays —
while execution runs through a
:class:`~repro.model.ragged.RaggedDecoder`: every :meth:`step` decodes
the whole live batch in **one** model forward, and admissions prefill
together in one ragged pass.

KV memory is block-granular by default (Sec. IV-B): each request's cache
is a :class:`~repro.model.paged_kv.PagedKVCache` over one shared
:class:`~repro.model.paged_kv.BlockAllocator`, blocks are reserved at
admission (so the pool can never be oversubscribed) and returned the
moment a request retires. ``offload_idle_kv`` instead parks idle caches
in host memory (Sec. IV-C2), with cumulative PCIe-traffic counters.

Correctness contract (tested): every request's output equals running
``model.generate`` on that prompt alone, regardless of what else shares
the engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..model.dense import DenseTransformer
from ..model.kvcache import HostOffloadKVCache
from ..model.paged_kv import BlockAllocator, PagedKVCache, blocks_needed
from ..model.ragged import RaggedDecoder
from ..model.sampling import SamplingConfig, sample_next_token
from ..rng import SeedLike, as_generator
from .scheduler import SchedRequest, Scheduler

__all__ = ["GenerationRequest", "GenerationSession"]


@dataclass
class GenerationRequest:
    """One sequence moving through the session.

    ``session``/``tenant``/``turn`` metadata mirrors the trace
    :class:`~repro.engine.serving_sim.Request` fields;
    ``shared_prefix_len`` is the *declared* reusable prefix, while
    ``prefix_reused`` records what the engine actually inherited at
    admission (0 = full prefill). When a prefix was reused, ``prompt``
    holds the *adopted* prompt: its first ``prefix_reused`` tokens are
    the parked parent's actual context, which the shared KV blocks were
    computed from — the output contract (equal to solo generation) holds
    against this prompt.
    """

    request_id: int
    prompt: np.ndarray  # (seq,) int
    max_new_tokens: int
    generated: list[int] = field(default_factory=list)
    cache: object | None = None
    done: bool = False
    finish_reason: str | None = None
    session: int | None = None
    tenant: str | None = None
    shared_prefix_len: int = 0
    prefix_reused: int = 0

    @property
    def output_ids(self) -> np.ndarray:
        """Prompt + generated tokens."""
        return np.concatenate([self.prompt, np.array(self.generated, dtype=int)])


@dataclass
class _ParkedPrefix:
    """A retired session turn's cache, parked for the next turn to fork.

    ``tokens`` are exactly the positions the cache holds (the turn's
    prompt plus all generated tokens but the final one — that token is
    emitted, never appended); a forking child adopts ``tokens[:eff]`` as
    its prompt head so the aliased KV provably matches its prompt.
    ``charge`` is the pool-block footprint the parked cache keeps
    occupied, counted against admission headroom until the entry is
    consumed or evicted.
    """

    tokens: np.ndarray
    cache: object
    ctx: int
    charge: int


class GenerationSession:
    """Continuous-batching decoding over one functional model (greedy by
    default; pass a :class:`SamplingConfig` for stochastic decoding)."""

    def __init__(
        self,
        model: DenseTransformer,
        *,
        eos_token: int | None = None,
        max_concurrency: int = 8,
        sampling: SamplingConfig | None = None,
        seed: SeedLike = 0,
        offload_idle_kv: bool = False,
        policy: str | object = "fcfs",
        kv_block_size: int = 16,
        kv_pool_blocks: int | None = None,
        prefix_sharing: bool = False,
    ) -> None:
        """``policy`` picks the admission order (see
        :data:`~repro.engine.scheduler.ADMISSION_POLICIES`; a configured
        tenant-aware policy instance also works).

        ``kv_block_size``/``kv_pool_blocks`` shape the paged-KV pool
        (default pool: enough blocks for ``max_concurrency`` sequences of
        ``max_seq``). ``offload_idle_kv`` switches to host-offload caches
        instead: every request's KV parks in host memory between its
        steps (Sec. IV-C2's policy, functionally);
        :attr:`kv_bytes_offloaded`/:attr:`kv_bytes_fetched` expose the
        induced PCIe traffic the performance model prices.

        ``prefix_sharing`` keeps each session's most recent retired
        cache *parked* in the pool; the session's next turn (submitted
        with ``session=`` and ``shared_prefix_len=``) forks it —
        inheriting the shared prefix blocks by copy-on-write aliasing —
        and prefills only its unshared suffix. Parked blocks count
        against admission headroom and are evicted oldest-first under
        pool pressure. Requires the paged-KV backend (not
        ``offload_idle_kv``)."""
        if prefix_sharing and offload_idle_kv:
            raise ValueError(
                "prefix_sharing requires the paged-KV backend; it cannot "
                "be combined with offload_idle_kv")
        self.model = model
        self.eos_token = eos_token
        self.max_concurrency = max_concurrency
        self.sampling = sampling or SamplingConfig(greedy=True)
        self.offload_idle_kv = offload_idle_kv
        self.scheduler = Scheduler(max_concurrency, policy=policy,
                                   eos_token=eos_token)
        self._rng = as_generator(seed)
        self._ids = itertools.count()
        layers = model.config.layers
        if offload_idle_kv:
            self.kv_allocator: BlockAllocator | None = None
            self.kv_block_size = None
            cache_factory = lambda: HostOffloadKVCache(layers)  # noqa: E731
        else:
            per_seq = blocks_needed(model.config.max_seq,
                                    block_size=kv_block_size,
                                    num_layers=layers)
            pool = (max_concurrency * per_seq if kv_pool_blocks is None
                    else kv_pool_blocks)
            self.kv_allocator = BlockAllocator(pool)
            self.kv_block_size = kv_block_size
            cache_factory = lambda: PagedKVCache(  # noqa: E731
                layers, self.kv_allocator, block_size=kv_block_size
            )
        self.decoder = RaggedDecoder(model, cache_factory=cache_factory)
        self.prefix_sharing = prefix_sharing
        # session -> parked prefix, in park order (oldest first for
        # eviction); a session holds at most one parked turn.
        self._parked: dict[int, _ParkedPrefix] = {}
        self._parked_total = 0  # pool blocks held by parked caches
        self.prefix_hits = 0
        self.prefix_hit_tokens = 0
        self.kv_blocks_saved = 0
        self.prefix_evictions = 0
        self._reqs: dict[int, GenerationRequest] = {}
        self._row_of: dict[int, int] = {}
        self._reserved: dict[int, int] = {}  # request_id -> reserved blocks
        self._reserved_total = 0
        self._active: list[GenerationRequest] = []  # mirrors decoder row order
        self._finished: dict[int, GenerationRequest] = {}
        self._kv_bytes_offloaded_retired = 0
        self._kv_bytes_fetched_retired = 0
        self.steps_run = 0
        self.tokens_generated = 0

    # -- request lifecycle ---------------------------------------------------

    def submit(self, prompt_ids, *, max_new_tokens: int,
               request_id: int | None = None, session: int | None = None,
               tenant: str | None = None,
               shared_prefix_len: int = 0) -> int:
        """Queue a request; returns its id.

        ``request_id`` lets a caller that already names its requests (the
        fleet layer routing a trace) keep its ids instead of the
        session-assigned counter; duplicates raise ``ValueError``.
        ``session``/``tenant`` tag the request for prefix sharing and
        tenant-aware admission; ``shared_prefix_len`` declares how many
        leading prompt tokens repeat the session's previous turn (the
        engine reuses at most that many, capped by what is actually
        parked — ignored unless the session was constructed with
        ``prefix_sharing=True``).
        """
        prompt = np.asarray(prompt_ids, dtype=int).ravel()
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if not 0 <= shared_prefix_len < prompt.size:
            raise ValueError(
                "shared_prefix_len must satisfy 0 <= prefix < prompt length")
        if shared_prefix_len and session is None:
            raise ValueError("shared_prefix_len needs a session to share with")
        if request_id is None:
            request_id = next(self._ids)
        elif request_id in self._reqs:
            raise ValueError(f"request id {request_id} already submitted")
        req = GenerationRequest(
            request_id=int(request_id),
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            session=session,
            tenant=tenant,
            shared_prefix_len=shared_prefix_len,
        )
        sched_req = SchedRequest(
            request_id=req.request_id,
            prompt_len=int(prompt.size),
            max_new_tokens=max_new_tokens,
            arrival=float(self.scheduler.step),
            tenant=tenant,
        )
        if self.kv_allocator is not None:
            need = self._blocks_for(sched_req)
            if need > self.kv_allocator.num_blocks:
                raise ValueError(
                    f"request needs {need} KV blocks but the pool only has "
                    f"{self.kv_allocator.num_blocks}; raise kv_pool_blocks "
                    "or shorten prompt/max_new_tokens"
                )
        self._reqs[req.request_id] = req
        self.scheduler.enqueue(sched_req)
        return req.request_id

    @property
    def num_active(self) -> int:
        """Sequences currently decoding."""
        return self.scheduler.num_active

    @property
    def num_waiting(self) -> int:
        """Requests queued for a slot."""
        return self.scheduler.num_waiting

    def result(self, request_id: int) -> GenerationRequest:
        """Fetch a finished request."""
        if request_id not in self._finished:
            raise KeyError(f"request {request_id} is not finished")
        return self._finished[request_id]

    # -- the engine loop -------------------------------------------------

    def _blocks_for(self, sched_req: SchedRequest) -> int:
        """Worst-case pool blocks the request can occupy (its cache never
        exceeds ``prompt + max_new_tokens`` positions, capped by max_seq)."""
        peak = min(sched_req.prompt_len + sched_req.max_new_tokens,
                   self.model.config.max_seq)
        return blocks_needed(peak, block_size=self.kv_block_size,
                             num_layers=self.model.config.layers)

    def _try_reserve(self, sched_req: SchedRequest) -> bool:
        """Admission gate: reserve the request's worst-case blocks now, so
        candidates admitted in the same round see each other's claims.

        Parked prefix caches count against headroom too; under pressure
        they are evicted oldest-first (sparing, if possible, the parked
        turn this very request wants to fork) before admission is
        refused. The reservation is the *full* worst case even on a
        prefix hit: the fork transfers the prefix blocks to this request,
        so they end up inside its reservation, not on top of it.
        """
        if self.kv_allocator is None:
            return True
        need = self._blocks_for(sched_req)

        def headroom() -> int:
            return (self.kv_allocator.num_blocks
                    - self._reserved_total - self._parked_total)

        while need > headroom() and self._parked:
            own = self._reqs[sched_req.request_id].session
            victim = next((s for s in self._parked if s != own), None)
            if victim is None:  # only our own parent left — correctness
                victim = own    # beats the hit; evict it and prefill fully
            entry = self._parked.pop(victim)
            entry.cache.free()
            self._parked_total -= entry.charge
            self.prefix_evictions += 1
        if need > headroom():
            return False
        self._reserved[sched_req.request_id] = need
        self._reserved_total += need
        return True

    def _release(self, request_id: int) -> None:
        self._reserved_total -= self._reserved.pop(request_id, 0)

    def _fork_prefix(self, req: GenerationRequest):
        """Consume the request's session's parked cache, if any: fork the
        shared prefix, adopt the parent's tokens under it, free the
        parent. Returns the forked child cache or ``None`` (full
        prefill)."""
        if (not self.prefix_sharing or req.session is None
                or not req.shared_prefix_len):
            return None
        parked = self._parked.pop(req.session, None)
        if parked is None:
            return None
        self._parked_total -= parked.charge
        eff = min(req.shared_prefix_len, parked.ctx)
        child = parked.cache.fork(eff)
        parked.cache.free()  # suffix blocks return; prefix now child-owned
        # Adopt the parent's actual context under the shared prefix: the
        # aliased KV was computed from exactly these tokens, so the
        # output contract (== solo generation on ``req.prompt``) holds.
        prompt = req.prompt.copy()
        prompt[:eff] = parked.tokens[:eff]
        req.prompt = prompt
        req.prefix_reused = eff
        self.prefix_hits += 1
        self.prefix_hit_tokens += eff
        self.kv_blocks_saved += blocks_needed(
            eff, block_size=self.kv_block_size,
            num_layers=self.model.config.layers)
        return child

    def _admit(self) -> None:
        """Fill free slots per the scheduler's policy; prefill all
        admissions of a round together in one ragged forward (prefix
        hits prefill only their unshared suffix)."""
        while True:
            admitted = self.scheduler.admit(can_admit=self._try_reserve)
            if not admitted:
                return
            reqs = [self._reqs[s.request_id] for s in admitted]
            prefixes = [self._fork_prefix(r) for r in reqs]
            try:
                row_ids, logits = self.decoder.add_rows(
                    [r.prompt for r in reqs], prefixes=prefixes)
            except Exception:
                # add_rows frees every row cache (forked children
                # included) on failure; only the reservations remain.
                for s in admitted:
                    self._release(s.request_id)
                raise
            tokens = sample_next_token(logits, self.sampling, self._rng)
            for req, row_id in zip(reqs, row_ids):
                self._row_of[req.request_id] = row_id
                req.cache = self.decoder.row_cache(row_id)
                self._active.append(req)
            for req, tok in zip(reqs, tokens):
                self._emit(req, int(tok))
            self._park(reqs)
            # Loop: same-step retirements (max_new_tokens == 1 / instant
            # EOS) free slots the queue can backfill immediately.

    def _park(self, reqs: list[GenerationRequest]) -> None:
        """Offload the requests' (now idle) caches until their next step."""
        if not self.offload_idle_kv:
            return
        for req in reqs:
            if req.done or not isinstance(req.cache, HostOffloadKVCache):
                continue
            for layer in range(self.model.config.layers):
                req.cache.offload(layer)

    @property
    def kv_bytes_offloaded(self) -> int:
        """Cumulative KV bytes moved to the host (retired requests included)."""
        live = sum(r.cache.bytes_offloaded for r in self._active
                   if isinstance(r.cache, HostOffloadKVCache))
        return self._kv_bytes_offloaded_retired + live

    @property
    def kv_bytes_fetched(self) -> int:
        """Cumulative KV bytes paged back from the host (retired included)."""
        live = sum(r.cache.bytes_fetched for r in self._active
                   if isinstance(r.cache, HostOffloadKVCache))
        return self._kv_bytes_fetched_retired + live

    @property
    def kv_blocks_in_use(self) -> int:
        """Pool blocks currently backing live sequences (0 when offloading)."""
        return 0 if self.kv_allocator is None else self.kv_allocator.used_blocks

    @property
    def peak_kv_blocks(self) -> int:
        """High-water pool occupancy, parked prefix caches included."""
        return 0 if self.kv_allocator is None else self.kv_allocator.peak_used

    @property
    def kv_blocks_parked(self) -> int:
        """Pool blocks currently held by parked session prefixes."""
        return self._parked_total

    @property
    def forward_calls(self) -> int:
        """Model forwards issued so far (prefills + one per decode step)."""
        return self.decoder.forward_calls

    def _emit(self, req: GenerationRequest, token: int) -> None:
        req.generated.append(token)
        self.tokens_generated += 1
        reason = self.scheduler.record_token(req.request_id, token)
        if reason is not None:
            req.done = True
            req.finish_reason = reason
            self._retire(req)

    def _retire(self, req: GenerationRequest) -> None:
        """Free the request's slot, row and KV memory; bank its counters.

        With prefix sharing on, a session-tagged request's cache is
        *parked* instead of freed — the session's next turn forks it —
        superseding any previous parked turn of the same session.
        """
        if isinstance(req.cache, HostOffloadKVCache):
            self._kv_bytes_offloaded_retired += req.cache.bytes_offloaded
            self._kv_bytes_fetched_retired += req.cache.bytes_fetched
        row_id = self._row_of.pop(req.request_id)
        if self.prefix_sharing and req.session is not None:
            cache = self.decoder.detach_row(row_id)
            ctx = cache.seq_len()
            prev = self._parked.pop(req.session, None)
            if prev is not None:
                prev.cache.free()
                self._parked_total -= prev.charge
            charge = blocks_needed(ctx, block_size=self.kv_block_size,
                                   num_layers=self.model.config.layers)
            # The cache holds every token but the final emitted one.
            self._parked[req.session] = _ParkedPrefix(
                tokens=req.output_ids[:-1], cache=cache, ctx=ctx,
                charge=charge)
            self._parked_total += charge
        else:
            self.decoder.drop_rows([row_id])  # blocks return to the pool
        self._release(req.request_id)
        req.cache = None  # free the KV memory (Sec. IV-B pressure)
        self._active.remove(req)
        self._finished[req.request_id] = req

    def step(self) -> list[int]:
        """Advance every live sequence one token; admit queued requests.

        The whole live batch decodes in **one** model forward, whatever
        its size. Returns the ids of requests that finished this step.
        """
        before = set(self._finished)
        self._admit()
        if self._active:
            last = np.array([r.generated[-1] for r in self._active])
            logits = self.decoder.step(last)  # one batched forward
            tokens = sample_next_token(logits, self.sampling, self._rng)
            live = list(self._active)
            for req, tok in zip(live, tokens):
                self._emit(req, int(tok))
            self._park(live)
        self.steps_run += 1
        self.scheduler.advance()
        self._admit()  # backfill slots freed this step
        return sorted(set(self._finished) - before)

    def run(self, max_steps: int = 10_000) -> dict[int, GenerationRequest]:
        """Step until every submitted request finishes."""
        steps = 0
        while self.scheduler.num_waiting or self.scheduler.num_active:
            self.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError("generation did not terminate; check EOS "
                                   "and max_new_tokens settings")
        return dict(self._finished)
