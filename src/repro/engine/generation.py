"""Functional generation serving: continuous batching with per-sequence
termination.

Sec. IV-C1's dynamic-queue schedule exists because autoregressive
sequences *terminate independently*: a fixed-batch engine would idle on
finished sequences or stall new ones. This module is the functional
counterpart: a :class:`GenerationSession` accepts requests at any time,
advances every live sequence one token per :meth:`step`, retires
sequences on EOS or length limits, and admits queued requests into freed
slots — the semantics the pipeline scheduler's micro-batch queue
implements in time.

Correctness contract (tested): every request's output equals running
``model.generate`` on that prompt alone, regardless of what else shares
the engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..model.dense import DenseTransformer
from ..model.kvcache import HostOffloadKVCache, KVCache
from ..model.sampling import SamplingConfig, sample_next_token

__all__ = ["GenerationRequest", "GenerationSession"]


@dataclass
class GenerationRequest:
    """One sequence moving through the session."""

    request_id: int
    prompt: np.ndarray  # (seq,) int
    max_new_tokens: int
    generated: list[int] = field(default_factory=list)
    cache: KVCache | None = None
    done: bool = False
    finish_reason: str | None = None

    @property
    def output_ids(self) -> np.ndarray:
        """Prompt + generated tokens."""
        return np.concatenate([self.prompt, np.array(self.generated, dtype=int)])


class GenerationSession:
    """Continuous-batching decoding over one functional model (greedy by
    default; pass a :class:`SamplingConfig` for stochastic decoding)."""

    def __init__(
        self,
        model: DenseTransformer,
        *,
        eos_token: int | None = None,
        max_concurrency: int = 8,
        sampling: SamplingConfig | None = None,
        seed: int = 0,
        offload_idle_kv: bool = False,
    ) -> None:
        """``offload_idle_kv`` parks every request's KV cache in host
        memory between its steps (Sec. IV-C2's policy, functionally);
        :attr:`kv_bytes_offloaded`/:attr:`kv_bytes_fetched` expose the
        induced PCIe traffic the performance model prices."""
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.model = model
        self.eos_token = eos_token
        self.max_concurrency = max_concurrency
        self.sampling = sampling or SamplingConfig(greedy=True)
        self.offload_idle_kv = offload_idle_kv
        self._rng = np.random.default_rng(seed)
        self._ids = itertools.count()
        self._waiting: list[GenerationRequest] = []
        self._active: list[GenerationRequest] = []
        self._finished: dict[int, GenerationRequest] = {}
        self.steps_run = 0
        self.tokens_generated = 0

    # -- request lifecycle ---------------------------------------------------

    def submit(self, prompt_ids, *, max_new_tokens: int) -> int:
        """Queue a request; returns its id."""
        prompt = np.asarray(prompt_ids, dtype=int).ravel()
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        req = GenerationRequest(
            request_id=next(self._ids),
            prompt=prompt,
            max_new_tokens=max_new_tokens,
        )
        self._waiting.append(req)
        return req.request_id

    @property
    def num_active(self) -> int:
        """Sequences currently decoding."""
        return len(self._active)

    @property
    def num_waiting(self) -> int:
        """Requests queued for a slot."""
        return len(self._waiting)

    def result(self, request_id: int) -> GenerationRequest:
        """Fetch a finished request."""
        if request_id not in self._finished:
            raise KeyError(f"request {request_id} is not finished")
        return self._finished[request_id]

    # -- the engine loop -------------------------------------------------

    def _admit(self) -> None:
        """Move waiting requests into free slots and run their prompts."""
        while self._waiting and len(self._active) < self.max_concurrency:
            req = self._waiting.pop(0)
            cache_cls = HostOffloadKVCache if self.offload_idle_kv else KVCache
            req.cache = cache_cls(self.model.config.layers)
            logits = self.model.forward(req.prompt[None, :], req.cache)
            self._emit(req, self._pick(logits))
            if not req.done:
                self._active.append(req)
                self._park(req)

    def _park(self, req: GenerationRequest) -> None:
        """Offload the request's (now idle) cache until its next step."""
        if self.offload_idle_kv and isinstance(req.cache, HostOffloadKVCache):
            for layer in range(self.model.config.layers):
                req.cache.offload(layer)

    @property
    def kv_bytes_offloaded(self) -> int:
        """Cumulative KV bytes moved to the host (live requests only)."""
        return sum(r.cache.bytes_offloaded for r in self._active
                   if isinstance(r.cache, HostOffloadKVCache))

    @property
    def kv_bytes_fetched(self) -> int:
        """Cumulative KV bytes paged back from the host."""
        return sum(r.cache.bytes_fetched for r in self._active
                   if isinstance(r.cache, HostOffloadKVCache))

    def _pick(self, logits: np.ndarray) -> int:
        """Next-token choice under the session's sampling policy."""
        return int(sample_next_token(logits[:, -1], self.sampling, self._rng)[0])

    def _emit(self, req: GenerationRequest, token: int) -> None:
        req.generated.append(token)
        self.tokens_generated += 1
        if self.eos_token is not None and token == self.eos_token:
            req.done = True
            req.finish_reason = "eos"
        elif len(req.generated) >= req.max_new_tokens:
            req.done = True
            req.finish_reason = "length"
        if req.done:
            req.cache = None  # free the KV memory (Sec. IV-B pressure)
            self._finished[req.request_id] = req

    def step(self) -> list[int]:
        """Advance every live sequence one token; admit queued requests.

        Returns the ids of requests that finished during this step.
        """
        before = set(self._finished)
        self._admit()
        still_active: list[GenerationRequest] = []
        for req in self._active:
            last = np.array([[req.generated[-1]]])
            logits = self.model.forward(last, req.cache)
            self._emit(req, self._pick(logits))
            if not req.done:
                still_active.append(req)
                self._park(req)
        self._active = still_active
        self.steps_run += 1
        self._admit()  # backfill slots freed this step
        return sorted(set(self._finished) - before)

    def run(self, max_steps: int = 10_000) -> dict[int, GenerationRequest]:
        """Step until every submitted request finishes."""
        steps = 0
        while self._waiting or self._active:
            self.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError("generation did not terminate; check EOS "
                                   "and max_new_tokens settings")
        return dict(self._finished)
