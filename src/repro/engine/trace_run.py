"""Full-deployment execution traces: what every GPU does, when.

The paper explains its schedules with timeline diagrams (Figs. 2, 3);
this module generates the equivalent for any dense deployment: one lane
per (stage, tensor-rank) GPU plus lanes for the TP all-reduce phases and
inter-stage transfers, built by replaying the deployment's workload
through the schedule simulator with per-component times from the latency
model. The result is a :class:`~repro.simcore.Timeline` — inspect it
programmatically or export Chrome/Perfetto JSON via ``to_chrome_trace``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore import Timeline
from .latency import DenseLatencyModel, Workload

__all__ = ["DeploymentTrace", "trace_generation"]


@dataclass(frozen=True)
class DeploymentTrace:
    """A generated execution timeline plus its summary numbers."""

    timeline: Timeline
    makespan: float
    tp: int
    pp: int

    def gpu_lane(self, stage: int, tp_rank: int) -> str:
        """Lane name of one GPU."""
        return f"stage{stage}/tp{tp_rank}"

    def mean_gpu_utilization(self) -> float:
        """Average busy fraction across all GPU lanes."""
        lanes = [l for l in self.timeline.lanes() if l.startswith("stage")]
        if not lanes:
            return 0.0
        return sum(
            self.timeline.utilization(l, self.makespan) for l in lanes
        ) / len(lanes)

    def to_chrome_trace(self) -> list[dict]:
        """Perfetto/chrome://tracing events for the whole deployment."""
        return self.timeline.to_chrome_trace()


def trace_generation(
    model: DenseLatencyModel, workload: Workload
) -> DeploymentTrace:
    """Trace one prompt+generation workload on ``model``'s deployment.

    Every micro-batch pass through a stage becomes, on each of that
    stage's ``tp`` GPU lanes, a kernel span followed by an all-reduce
    span (when tp > 1); inter-stage hops appear on ``p2p`` lanes. The
    schedule itself comes from the same simulator the latency estimates
    use, so the trace *is* the estimate, visualized.
    """
    from ..parallel.schedules import simulate_pipeline

    pp, tp = model.pp, model.tp
    gen_mb = pp if pp > 1 else 1
    prompt_mb = gen_mb * model.hybrid_prompt_factor
    mb_batch = max(1, workload.batch // gen_mb)
    pmb_batch = max(1, workload.batch // prompt_mb)
    kv_end = workload.prompt_len + workload.gen_tokens

    result = simulate_pipeline(
        num_stages=pp,
        prompt_microbatches=prompt_mb,
        gen_microbatches=gen_mb,
        gen_tokens=workload.gen_tokens,
        prompt_stage_time=model.stage_time(pmb_batch, workload.prompt_len,
                                           workload.prompt_len),
        gen_stage_time=model.stage_time(mb_batch, 1, kv_end),
        p2p_time=model._p2p_act_time(mb_batch, 1) if pp > 1 else 0.0,
        lockstep_generation=model.lockstep_generation,
    )

    # Expand each stage span onto its tp GPU lanes, splitting the span
    # into the kernel portion and the all-reduce portion.
    gk, gc = model.layer_time(mb_batch, 1, kv_end)
    comm_frac_gen = gc / (gk + gc) if (gk + gc) > 0 else 0.0
    pk, pc = model.layer_time(pmb_batch, workload.prompt_len,
                              workload.prompt_len)
    comm_frac_prompt = pc / (pk + pc) if (pk + pc) > 0 else 0.0

    out = Timeline()
    for stage in range(pp):
        for span in result.timeline.spans(f"stage{stage}"):
            frac = comm_frac_prompt if span.label.startswith("P") else comm_frac_gen
            split = span.start + span.duration * (1.0 - frac)
            for r in range(tp):
                lane = f"stage{stage}/tp{r}"
                out.record(lane, span.start, split, f"{span.label}:kernels")
                if frac > 0:
                    out.record(lane, split, span.end, f"{span.label}:allreduce")
    # Inter-stage transfers: the gap between a micro-batch leaving stage s
    # and entering stage s+1 (when the schedule inserted p2p time).
    for stage in range(pp - 1):
        ups = result.timeline.spans(f"stage{stage}")
        downs = {
            s.label: s for s in result.timeline.spans(f"stage{stage + 1}")
        }
        for s in ups:
            d = downs.get(s.label)
            if d is not None and d.start > s.end:
                out.record(f"p2p{stage}->{stage + 1}", s.end,
                           min(d.start, s.end + (d.start - s.end)),
                           f"{s.label}:send")

    return DeploymentTrace(
        timeline=out, makespan=result.makespan, tp=tp, pp=pp
    )
