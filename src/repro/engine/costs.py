"""Step-cost models: one pricing interface for every model family.

The serving ladder — :class:`~repro.engine.scheduler.Scheduler` →
:func:`~repro.engine.serving_sim.simulate_serving` →
:func:`~repro.fleet.sim.simulate_fleet` → the tuners — makes *lifecycle*
decisions; what turns those decisions into seconds is a pricing model.
Historically that seam was a pair of closures built by
:func:`~repro.engine.serving_sim.serving_step_times` around the dense
latency model only, and every decode step was priced at one
representative KV length. This module replaces the closure pair with a
first-class interface so any model family (dense, sparse/MoE,
ZeRO-offloaded — the paper's three pillars, Secs. IV-VI) plugs into the
same serving/fleet/tuning stack with one adapter:

* :class:`BatchState` — the live batch at pricing time: one KV length
  per running sequence (prompt + tokens generated so far);
* :class:`StepCostModel` — ``prompt_cost(state, request)`` prices
  admitting one prompt while ``state`` (the sequences already live)
  rides along in the same iteration (Sec. IV-C1's hybrid prompt+token
  scheduling); ``decode_cost(state)`` prices one decode iteration that
  generates one token for every sequence in ``state``;
* :class:`DenseStepCost` — wraps :class:`~repro.engine.latency
  .DenseLatencyModel`. ``representative_kv`` selects the legacy compat
  mode (bit-for-bit the old ``serving_step_times`` numbers); the default
  true-KV mode prices each decode at the batch's actual KV lengths;
* :class:`MoEStepCost` — wraps :class:`~repro.engine.moe
  .MoELatencyModel` (gating + all-to-all + expert FFN per step);
* :class:`ZeroStepCost` — wraps :class:`~repro.zero.inference
  .ZeroInferenceEngine`'s streamed forward pass;
* :class:`ClosureStepCost` — wraps a legacy ``(prompt_time,
  step_time)`` closure pair, so existing call sites keep working.

Adapters memoize on the (batch, kv, prompt_len) shapes they price —
a serving replay re-prices the same few shapes thousands of times.

Beyond the two scalar methods, every model prices whole *runs*:
:meth:`StepCostModel.decode_run_cost` returns the per-iteration costs of
``steps`` consecutive decode iterations in one NumPy evaluation. Between
scheduler-relevant events the live batch's composition is frozen — every
KV length just grows by one per iteration — so the event-compressed
serving loop (:func:`~repro.engine.serving_sim.simulate_serving`) prices
a whole stretch with one call instead of ``steps`` Python round-trips.
The ABC ships a per-step reference fallback; the shipped adapters
override it with an evaluate-once, slice-forever scheme (a per-batch
cost-vs-KV array, :class:`_KvRunCache`) whose entries are produced by the
*same* scalar routine ``decode_cost`` uses, so run pricing is bit-for-bit
identical to the per-step path.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "BatchState",
    "PromptShape",
    "StepCostModel",
    "ClosureStepCost",
    "DenseStepCost",
    "MoEStepCost",
    "ZeroStepCost",
    "resolve_step_costs",
]


@runtime_checkable
class _HasPromptLen(Protocol):
    prompt_len: int


@dataclass(frozen=True)
class PromptShape:
    """Minimal request stand-in for pricing: just the prompt shape.

    Any object with a ``prompt_len`` attribute (``SchedRequest``, a
    trace ``Request``) works where a "request" is expected; this class
    exists for callers that have only the numbers.

    ``shared_prefix_len`` marks the leading tokens whose KV already
    lives in a shared cache (a chat turn forked from its conversation):
    the prefix-aware adapters prefill only the remaining suffix, priced
    attending over the *full* context (cached prefix included).
    """

    prompt_len: int
    shared_prefix_len: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        if not 0 <= self.shared_prefix_len < self.prompt_len:
            raise ValueError(
                "shared_prefix_len must satisfy 0 <= prefix < prompt_len")


@dataclass(frozen=True)
class BatchState:
    """The live batch at pricing time.

    ``kv_lens[i]`` is sequence ``i``'s context length — its prompt plus
    every token generated so far. An empty state is legal (pricing a
    prompt pass that joins an idle server has no riders).
    """

    kv_lens: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(kv < 1 for kv in self.kv_lens):
            raise ValueError("KV lengths must be >= 1")

    @property
    def batch(self) -> int:
        """Number of live sequences."""
        return len(self.kv_lens)

    @property
    def total_kv(self) -> int:
        """Sum of context lengths — the attention work of one decode."""
        return sum(self.kv_lens)

    @property
    def mean_kv(self) -> int:
        """Ceiling of the mean context length (0 for an empty state).

        Per-step attention cost is linear in each sequence's KV length,
        so a uniform batch at the mean prices the same attention work as
        the ragged batch; the ceiling keeps the pricing conservative.
        """
        if not self.kv_lens:
            return 0
        return math.ceil(self.total_kv / self.batch)

    @property
    def max_kv(self) -> int:
        """Longest context in the batch (0 for an empty state)."""
        return max(self.kv_lens, default=0)

    @classmethod
    def uniform(cls, batch: int, kv_len: int) -> "BatchState":
        """A batch of ``batch`` sequences all at ``kv_len``."""
        if batch < 0:
            raise ValueError("batch must be >= 0")
        return cls((kv_len,) * batch)

    def advanced(self, steps: int = 1) -> "BatchState":
        """The state after ``steps`` decode iterations with this exact
        batch composition: every sequence's KV length grows by one per
        iteration (each generates one token per step)."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return self
        return BatchState(tuple(kv + steps for kv in self.kv_lens))


class _KvRunCache:
    """Growable cost-vs-KV arrays, one per cache key (e.g. batch size).

    The adapters' decode cost is a pure function of a small shape key
    plus the (mean) KV length, and a decode run walks a *contiguous* KV
    range — so the natural vectorized store is an array indexed by KV.
    Each missing entry is evaluated exactly once via the ``fill``
    callback (the adapter's scalar pricing routine, so the stored floats
    are bit-for-bit the scalar path's); after warm-up a whole run prices
    as one NumPy slice.
    """

    def __init__(self) -> None:
        self._arrays: dict = {}

    def run(self, key, kv0: int, steps: int, fill: Callable[[int], float]) -> np.ndarray:
        """Costs for KV lengths ``kv0 .. kv0+steps-1`` under ``key``."""
        need = kv0 + steps
        arr = self._arrays.get(key)
        if arr is None:
            arr = self._arrays[key] = np.full(max(need, 64), np.nan)
        elif arr.size < need:
            grown = np.full(max(need, 2 * arr.size), np.nan)
            grown[: arr.size] = arr
            arr = self._arrays[key] = grown
        seg = arr[kv0:need]
        for i in np.nonzero(np.isnan(seg))[0]:
            seg[i] = fill(kv0 + int(i))
        return seg.copy()


class StepCostModel(ABC):
    """Prices a continuous-batching server's two iteration kinds.

    The serving/fleet simulators call these with states built from the
    shared scheduler, so every model family sees exactly the decisions
    the dense path sees — only the seconds differ.
    """

    @abstractmethod
    def prompt_cost(self, state: BatchState, request: _HasPromptLen) -> float:
        """Seconds to admit ``request`` (its full prompt pass) while the
        ``state`` sequences — the batch *excluding* the newcomer — each
        ride along for one decode token in the same iteration."""

    @abstractmethod
    def decode_cost(self, state: BatchState) -> float:
        """Seconds for one decode iteration generating one token for
        every sequence in ``state`` (``state.batch >= 1``)."""

    def decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        """Per-iteration seconds of ``steps`` consecutive decode
        iterations starting from ``state``, as a float64 array.

        Element ``i`` equals ``decode_cost(state.advanced(i))``
        bit-for-bit — the batch's composition is frozen across the run
        and every KV length grows by one per iteration, which is exactly
        the situation between two scheduler-relevant events. The base
        implementation is the per-step reference loop; the shipped
        adapters override :meth:`_decode_run_cost` with vectorized
        evaluation.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return np.empty(0)
        if state.batch < 1:
            raise ValueError("decode_run_cost needs a non-empty batch")
        return self._decode_run_cost(state, steps)

    def _decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        # Per-step reference fallback: correct for any model, one Python
        # round-trip per iteration.
        out = np.empty(steps)
        for i in range(steps):
            out[i] = self.decode_cost(state)
            state = state.advanced()
        return out


class ClosureStepCost(StepCostModel):
    """Adapter over the legacy ``(prompt_time, step_time)`` closure pair.

    ``prompt_time(batch, prompt_len)`` takes the batch size *including*
    the admitted request (the pre-refactor convention); ``step_time
    (batch)`` the live batch size. State KV contents are ignored — the
    closures never saw them either. Likewise prefix-blind: a prompt with
    ``shared_prefix_len`` set still pays ``prompt_time`` on its full
    length, because the closure signature has no slot for the split
    (use :class:`DenseStepCost` and friends for prefix-aware pricing).
    """

    def __init__(
        self,
        prompt_time: Callable[[int, int], float],
        step_time: Callable[[int], float],
    ) -> None:
        self._prompt_time = prompt_time
        self._step_time = step_time

    def prompt_cost(self, state: BatchState, request: _HasPromptLen) -> float:
        return self._prompt_time(state.batch + 1, request.prompt_len)

    def decode_cost(self, state: BatchState) -> float:
        return self._step_time(state.batch)

    def _decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        # KV-blind: the run is one closure call broadcast across steps.
        return np.full(steps, self._step_time(state.batch))


class DenseStepCost(StepCostModel):
    """Price serving steps with a :class:`DenseLatencyModel`.

    ``representative_kv`` selects the compat mode: every decode (and
    every rider folded into a prompt pass) is priced at that one KV
    length, reproducing the deprecated
    :func:`~repro.engine.serving_sim.serving_step_times` closures
    bit-for-bit (they used ``mean_prompt + mean_gen // 2``). With the
    default ``None``, each call is priced at the live batch's actual
    KV-length distribution (the ceiling-mean, exact for the
    linear-in-KV attention term).
    """

    def __init__(self, latency_model, *, representative_kv: int | None = None) -> None:
        if representative_kv is not None and representative_kv < 1:
            raise ValueError("representative_kv must be >= 1 when given")
        self.latency_model = latency_model
        self.representative_kv = representative_kv
        self._memo: dict[tuple, float] = {}
        self._pass_memo: dict[tuple, tuple[float, float]] = {}
        self._runs = _KvRunCache()

    def _rider_kv(self, state: BatchState) -> int:
        if self.representative_kv is not None:
            return self.representative_kv
        return max(1, state.mean_kv)

    def _fwd_pass(self, batch: int, tokens_per_seq: int, kv: int) -> tuple[float, float]:
        """Memoized ``step_time`` — a prompt pass and a decode pass reuse
        the same sub-results across thousands of distinct cache keys."""
        key = (batch, tokens_per_seq, kv)
        got = self._pass_memo.get(key)
        if got is None:
            got = self._pass_memo[key] = self.latency_model.step_time(
                batch, tokens_per_seq, kv)
        return got

    def prompt_cost(self, state: BatchState, request: _HasPromptLen) -> float:
        riders = state.batch
        kv = self._rider_kv(state) if riders else 0
        plen = request.prompt_len
        # A prefix-hit prompt prefills only its unshared suffix, attending
        # over the full context (the cached prefix is KV, not new tokens).
        spl = getattr(request, "shared_prefix_len", 0)
        key = ("prompt", plen, spl, riders, kv)
        got = self._memo.get(key)
        if got is None:
            k, c = self._fwd_pass(1, plen - spl, plen)
            if riders:  # the live batch rides along in the same iteration
                dk, dc = self._fwd_pass(riders, 1, kv)
                k, c = k + dk, c + dc
            got = self._memo[key] = k + c
        return got

    def decode_cost(self, state: BatchState) -> float:
        kv = self._rider_kv(state)
        key = ("decode", state.batch, kv)
        got = self._memo.get(key)
        if got is None:
            k, c = self._fwd_pass(max(1, state.batch), 1, kv)
            got = self._memo[key] = k + c
        return got

    def _decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        if self.representative_kv is not None:
            # Compat mode pins KV, so the whole run costs one value.
            return np.full(steps, self.decode_cost(state))
        batch = state.batch
        # mean_kv grows exactly +1 per iteration (every sequence gains one
        # token, so the ceiling-mean shifts by one).
        def fill(kv: int) -> float:
            k, c = self._fwd_pass(batch, 1, kv)
            return k + c
        return self._runs.run(batch, max(1, state.mean_kv), steps, fill)


class MoEStepCost(StepCostModel):
    """Price serving steps with a :class:`MoELatencyModel`.

    The MoE model is token-count driven — gating, the two all-to-alls,
    and the expert FFN all scale with the tokens flowing through a step
    — so a prompt pass of ``L`` tokens is priced as a step carrying
    ``L`` tokens attending over the prompt, and a decode iteration as a
    step carrying one token per live sequence at the batch's KV lengths.

    ``skew`` opts into skew-aware dispatch pricing: any object with
    ``load_ratio(tokens)`` and ``stall_time(tokens)`` (duck-typed so the
    engine never imports :mod:`repro.moe_placement`, e.g. a
    :class:`~repro.moe_placement.SkewedDispatchSpec`). Both hooks depend
    only on the step's token count, so the memoized ``(tokens, kv)``
    pricing — and with it the vectorized :meth:`decode_run_cost` fast
    path — survives intact. A spec whose ratio is 1.0 and stall 0.0
    prices bit-for-bit like ``skew=None``.
    """

    def __init__(self, moe_model, *, skew=None) -> None:
        if skew is not None and (
            not callable(getattr(skew, "load_ratio", None))
            or not callable(getattr(skew, "stall_time", None))
        ):
            raise TypeError(
                "skew must expose load_ratio(tokens) and stall_time(tokens)")
        self.moe_model = moe_model
        self.skew = skew
        self._memo: dict[tuple, float] = {}
        self._skew_memo: dict[int, tuple[float, float]] = {}
        self._runs = _KvRunCache()

    def _skew_terms(self, tokens: int) -> tuple[float, float]:
        got = self._skew_memo.get(tokens)
        if got is None:
            got = self._skew_memo[tokens] = (
                self.skew.load_ratio(tokens),
                self.skew.stall_time(tokens),
            )
        return got

    def _step(self, tokens: int, kv: int) -> float:
        key = (tokens, kv)
        got = self._memo.get(key)
        if got is None:
            if self.skew is None:
                total = self.moe_model.token_step(tokens, kv).total
            else:
                ratio, stall = self._skew_terms(tokens)
                total = self.moe_model.skewed_token_step(
                    tokens, kv, load_ratio=ratio, stall_time=stall
                ).total
            got = self._memo[key] = total
        return got

    def prompt_cost(self, state: BatchState, request: _HasPromptLen) -> float:
        spl = getattr(request, "shared_prefix_len", 0)
        # Prefix-hit prompts route only the unshared suffix tokens through
        # gating/all-to-all/FFN, attending over the full context.
        cost = self._step(request.prompt_len - spl, request.prompt_len)
        if state.batch:  # the live batch rides along in the same iteration
            cost += self._step(state.batch, max(1, state.mean_kv))
        return cost

    def decode_cost(self, state: BatchState) -> float:
        return self._step(max(1, state.batch), max(1, state.mean_kv))

    def _decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        tokens = max(1, state.batch)
        return self._runs.run(tokens, max(1, state.mean_kv), steps,
                              lambda kv: self._step(tokens, kv))


class ZeroStepCost(StepCostModel):
    """Price serving steps with a :class:`ZeroInferenceEngine`.

    Every iteration streams the full weight set through the GPUs (Sec.
    VI-A), so per-step cost is dominated by the fetch/compute overlap
    the engine's prefetch pipeline models. This is a throughput-oriented
    backend: sensible traces batch aggressively, and the tuners treat it
    as such.
    """

    def __init__(self, zero_engine) -> None:
        self.zero_engine = zero_engine
        self._memo: dict[tuple, float] = {}
        self._runs = _KvRunCache()

    def _pass(self, batch: int, tokens_per_seq: int, kv: int) -> float:
        key = (batch, tokens_per_seq, kv)
        got = self._memo.get(key)
        if got is None:
            got = self._memo[key] = self.zero_engine.forward_pass(
                batch=batch, tokens_per_seq=tokens_per_seq, kv_len=kv).time
        return got

    def prompt_cost(self, state: BatchState, request: _HasPromptLen) -> float:
        spl = getattr(request, "shared_prefix_len", 0)
        # Weights stream regardless, but only the unshared suffix runs
        # through the pass; it attends over the full context.
        cost = self._pass(1, request.prompt_len - spl, request.prompt_len)
        if state.batch:  # riders pay a decode pass in the same round
            cost += self._pass(state.batch, 1, max(1, state.mean_kv))
        return cost

    def decode_cost(self, state: BatchState) -> float:
        return self._pass(max(1, state.batch), 1, max(1, state.mean_kv))

    def _decode_run_cost(self, state: BatchState, steps: int) -> np.ndarray:
        batch = max(1, state.batch)
        return self._runs.run(batch, max(1, state.mean_kv), steps,
                              lambda kv: self._pass(batch, 1, kv))


def resolve_step_costs(
    costs: StepCostModel | None,
    prompt_time: Callable[[int, int], float] | None,
    step_time: Callable[[int], float] | None,
) -> StepCostModel:
    """Normalize the dual pricing interface of the serving entry points.

    Callers pass either ``costs`` (a :class:`StepCostModel`) or the
    legacy ``prompt_time``/``step_time`` closure pair — never both.
    """
    if costs is not None:
        if prompt_time is not None or step_time is not None:
            raise ValueError(
                "pass either costs= or prompt_time=/step_time=, not both")
        return costs
    if prompt_time is None or step_time is None:
        raise ValueError(
            "pricing required: pass costs= (a StepCostModel) or both "
            "prompt_time= and step_time=")
    return ClosureStepCost(prompt_time, step_time)
