"""Massive-scale sparse (MoE) inference latency model (Sec. V).

Per token step, a DeepSpeed-MoE deployment pays, layer by layer:

* the dense components (attention everywhere, dense FFN on non-MoE
  layers), tensor-sliced ``mp`` ways and *replicated* across the
  expert-parallel groups via data parallelism — which is why every GPU
  streams its dense shard each step and the aggregate-bandwidth numbers
  of Fig. 7/11 count all ``num_gpus``;
* the gating function — either the baseline's sparse one-hot pipeline
  (dozens of kernel launches plus ``S x E x M x c_e`` einsum work) or the
  paper's fused dense-table kernels (``S x M x c_e``), Sec. V-C;
* the routed expert FFN, possibly expert-sliced (Table II);
* two all-to-alls per MoE layer — naive ``O(p)`` for the baseline,
  PCC ``O(p/L) (+ O(L))`` for DeepSpeed (Sec. V-B);
* two tensor-parallel all-reduces per layer when ``mp > 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..comm.hierarchical import CommGroup, hierarchical_allreduce_time
from ..comm.pcc import pcc_alltoall
from ..comm.primitives import naive_alltoall_time
from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..kernels.costmodel import KernelCostModel
from ..kernels.graph import LayerShape, moe_expert_ffn_ops, transformer_layer_ops
from ..kernels.profiles import DEEPSPEED_FP16, PYTORCH_FP16, ImplementationProfile
from ..model.config import ModelConfig, MoEParallelism
from ..model.gating import expert_capacity

__all__ = ["MoEStepBreakdown", "MoELatencyModel"]

# Kernel-launch counts of the two gating implementations (Sec. V-C): the
# baseline's mask building / top-k / cumsum / sparse einsum chain issues
# dozens of small kernels; the fused dense-table path issues a handful.
_BASELINE_GATING_KERNELS = 48
_OPTIMIZED_GATING_KERNELS = 4
# Framework overhead per peer in the baseline's loop-of-sends all-to-all.
_BASELINE_A2A_PEER_OVERHEAD = 8.0e-6
# Floor execution time of one small kernel (grid launch ramp, final sync).
_MIN_KERNEL_EXEC = 1.5e-6


@dataclass(frozen=True)
class MoEStepBreakdown:
    """Per-token-step latency decomposition of an MoE deployment."""

    dense_time: float
    gating_time: float
    expert_time: float
    alltoall_time: float
    allreduce_time: float
    stall_time: float = 0.0  # streamed-expert prefetch-miss stalls

    @property
    def total(self) -> float:
        """End-to-end per-step latency."""
        return (
            self.dense_time
            + self.gating_time
            + self.expert_time
            + self.alltoall_time
            + self.allreduce_time
            + self.stall_time
        )

    @property
    def moe_kernel_time(self) -> float:
        """Gating + dispatch kernel time — the quantity the paper's MoE
        kernel optimizations cut by ~6x (Sec. V-C)."""
        return self.gating_time


class MoELatencyModel:
    """Latency of one MoE deployment, optimized (DeepSpeed) or baseline."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        parallelism: MoEParallelism,
        *,
        optimized: bool = True,
        profile: ImplementationProfile | None = None,
    ) -> None:
        if config.moe is None:
            raise ValueError(f"{config.name} is not an MoE model")
        if parallelism.num_gpus > cluster.num_gpus:
            raise ValueError(
                f"deployment needs {parallelism.num_gpus} GPUs, cluster has "
                f"{cluster.num_gpus}"
            )
        self.config = config
        self.cluster = cluster
        self.par = parallelism
        self.optimized = optimized
        # The baseline (Sec. VII-A1) is "a full-featured distributed
        # PyTorch implementation": eager kernels, no expert slicing.
        self.profile = profile or (DEEPSPEED_FP16 if optimized else PYTORCH_FP16)
        self.expert_slicing = parallelism.expert_slicing if optimized else 1
        self.kernel_model = KernelCostModel(cluster.gpu, self.profile)
        self._mp_group = (
            CommGroup(cluster, list(range(parallelism.mp_degree)))
            if parallelism.mp_degree > 1
            else None
        )

    # -- component times ----------------------------------------------------

    def _shape(self, batch: int, kv_len: int) -> LayerShape:
        return LayerShape(
            hidden=self.config.hidden,
            heads=self.config.heads,
            batch=batch,
            tokens_per_seq=1,
            kv_len=kv_len,
            dtype=DType.FP16,
            tp_degree=self.par.mp_degree,
            ffn_mult=self.config.ffn_mult,
        )

    def dense_layer_time(self, batch: int, kv_len: int, *, with_ffn: bool) -> float:
        """Kernel time of one layer's dense components on one GPU."""
        ops = transformer_layer_ops(self._shape(batch, kv_len))
        if not with_ffn:
            ops = [
                o
                for o in ops
                if not o.name.startswith("mlp_") and o.name != "gelu_bias"
            ]
        return self.kernel_model.chain_cost(ops, tokens=batch).total_time

    def gating_time(self, batch: int) -> float:
        """Gating + dispatch/combine kernel time per MoE layer."""
        e = self.config.moe.num_experts
        m = self.config.hidden
        ce = expert_capacity(batch, e, self.config.moe.capacity_factor)
        d = DType.FP16.itemsize
        gpu = self.cluster.gpu
        launch = gpu.kernel_launch_overhead + self.profile.dispatch_overhead
        if self.optimized:
            # Dense-table path: S*M*c_e data movement, a handful of fused
            # kernels (launches removed by CUDA graph). Each kernel still
            # has a floor execution time (grid ramp-up / sync).
            bytes_moved = 2.0 * batch * m * ce * d
            kernels = _OPTIMIZED_GATING_KERNELS
            launch_cost = kernels * (0.3e-6 if self.profile.cuda_graph else launch)
            exec_time = max(bytes_moved / (gpu.mem_bw * 0.7),
                            kernels * _MIN_KERNEL_EXEC)
            return launch_cost + exec_time
        # Sparse one-hot path: every token touches every expert's mask.
        bytes_moved = 2.0 * batch * e * m * ce * d
        flops = 4.0 * batch * e * m * ce
        kernels = _BASELINE_GATING_KERNELS
        return (
            kernels * launch
            + bytes_moved / (gpu.mem_bw * 0.5)
            + flops / (gpu.peak_flops(DType.FP16) * 0.05)
        )

    def expert_time(self, batch: int) -> float:
        """Critical-path expert FFN time (experts run in parallel on their
        own GPUs; the slowest processes ``c_e`` tokens)."""
        e = self.config.moe.num_experts
        ce = expert_capacity(batch, e, self.config.moe.capacity_factor)
        return self.expert_time_at(ce)

    def expert_time_at(self, expert_tokens: int) -> float:
        """Expert FFN time when the critical-path expert processes
        ``expert_tokens`` tokens — the uniform model passes ``c_e``,
        skew-aware pricing the straggler rank's actual share."""
        if expert_tokens < 1:
            raise ValueError("expert_tokens must be >= 1")
        shape = LayerShape(
            hidden=self.config.hidden,
            heads=self.config.heads,
            batch=expert_tokens,
            tokens_per_seq=1,
            kv_len=1,
            dtype=DType.FP16,
            tp_degree=1,
            ffn_mult=self.config.ffn_mult,
        )
        ops = moe_expert_ffn_ops(shape, expert_slicing=self.expert_slicing)
        return self.kernel_model.chain_cost(
            ops, tokens=expert_tokens
        ).total_time

    def expert_fetch_time(self) -> float:
        """PCIe time to pull one streamed expert's (sliced) parameters
        into GPU memory — the unit a prefetch miss stalls for."""
        pcie = self.cluster.node.pcie
        nbytes = (
            self.config.params_per_expert
            * DType.FP16.itemsize
            / self.expert_slicing
        )
        return pcie.latency + nbytes / pcie.bandwidth

    def alltoall_time(self, batch: int) -> float:
        """Two all-to-alls per MoE layer (dispatch + combine)."""
        nbytes = batch * self.config.hidden * DType.FP16.itemsize
        p = self.par.ep_degree
        if self.optimized:
            fwd = pcc_alltoall(
                self.cluster, nbytes, p, self.par.mp_degree, direction="tp_to_ep"
            ).total
            back = pcc_alltoall(
                self.cluster, nbytes, p, self.par.mp_degree, direction="ep_to_tp"
            ).total
            return fwd + back
        link = (
            self.cluster.node.intra_link
            if p <= self.cluster.node.gpus_per_node
            else self.cluster.inter_link
        )
        one = naive_alltoall_time(
            link, nbytes, p, overhead_per_peer=_BASELINE_A2A_PEER_OVERHEAD
        ).total
        return 2.0 * one

    def allreduce_time(self, batch: int) -> float:
        """Two tensor-parallel all-reduces per layer."""
        if self._mp_group is None:
            return 0.0
        nbytes = batch * self.config.hidden * DType.FP16.itemsize
        return 2.0 * hierarchical_allreduce_time(self._mp_group, nbytes).total

    # -- end to end ---------------------------------------------------------

    def token_step(self, batch: int, kv_len: int = 228) -> MoEStepBreakdown:
        """Latency breakdown of one generation step (default kv 128+100,
        the Sec. VII-A3 sparse workload)."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        layers = self.config.layers
        n_moe = self.config.num_moe_layers
        n_dense_ffn = layers - n_moe

        dense = (
            n_dense_ffn * self.dense_layer_time(batch, kv_len, with_ffn=True)
            + n_moe * self.dense_layer_time(batch, kv_len, with_ffn=False)
        )
        gating = n_moe * self.gating_time(batch)
        experts = n_moe * self.expert_time(batch)
        a2a = n_moe * self.alltoall_time(batch)
        ar = layers * self.allreduce_time(batch)
        return MoEStepBreakdown(
            dense_time=dense,
            gating_time=gating,
            expert_time=experts,
            alltoall_time=a2a,
            allreduce_time=ar,
        )

    def skewed_token_step(
        self,
        batch: int,
        kv_len: int = 228,
        *,
        load_ratio: float = 1.0,
        stall_time: float = 0.0,
    ) -> MoEStepBreakdown:
        """Latency breakdown under a skewed gate distribution.

        ``load_ratio`` is the straggler rank's token load over the mean
        (>= 1.0, e.g. from
        :meth:`repro.moe_placement.SkewedDispatchSpec.load_ratio`): the
        expert-FFN critical path and the all-to-all volume both stretch
        by it, because dispatch waits for the most-loaded rank.
        ``stall_time`` is the expected per-MoE-layer prefetch-miss stall.
        At ``load_ratio=1.0`` and ``stall_time=0.0`` this reproduces
        :meth:`token_step` bit-for-bit — the uniform-placement compat
        oracle.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if load_ratio < 1.0:
            raise ValueError("load_ratio must be >= 1.0")
        if stall_time < 0.0:
            raise ValueError("stall_time must be >= 0")
        layers = self.config.layers
        n_moe = self.config.num_moe_layers
        n_dense_ffn = layers - n_moe
        e = self.config.moe.num_experts
        ce = expert_capacity(batch, e, self.config.moe.capacity_factor)

        dense = (
            n_dense_ffn * self.dense_layer_time(batch, kv_len, with_ffn=True)
            + n_moe * self.dense_layer_time(batch, kv_len, with_ffn=False)
        )
        gating = n_moe * self.gating_time(batch)
        experts = n_moe * self.expert_time_at(
            max(1, math.ceil(ce * load_ratio))
        )
        a2a = n_moe * self.alltoall_time(max(1, math.ceil(batch * load_ratio)))
        ar = layers * self.allreduce_time(batch)
        return MoEStepBreakdown(
            dense_time=dense,
            gating_time=gating,
            expert_time=experts,
            alltoall_time=a2a,
            allreduce_time=ar,
            stall_time=n_moe * stall_time,
        )

    def token_latency(self, batch: int, kv_len: int = 228) -> float:
        """Per generated-token latency (Fig. 7's y-axis)."""
        return self.token_step(batch, kv_len).total

    # -- bandwidth accounting (Fig. 11) --------------------------------------

    def bytes_read_per_gpu(self, batch: int) -> float:
        """Parameter bytes one GPU streams per token step.

        Every GPU reads its tensor-sliced dense shard (data parallelism
        replicates that work); expert GPUs additionally read the shard of
        each locally-activated expert.
        """
        d = DType.FP16.itemsize
        dense_shard = self.config.base_params * d / self.par.mp_degree
        e = self.config.moe.num_experts
        active = min(batch * self.config.moe.top_k, e)
        expert_bytes = (
            self.config.num_moe_layers
            * active
            * self.config.params_per_expert
            * d
            / self.expert_slicing
        )
        # Active experts spread over the expert-parallel ranks.
        per_gpu_expert = expert_bytes / self.par.ep_degree
        return dense_shard + per_gpu_expert

    def effective_bandwidth_per_gpu(self, batch: int, kv_len: int = 228) -> float:
        """Achieved bytes/s per GPU — Fig. 11's metric."""
        return self.bytes_read_per_gpu(batch) / self.token_latency(batch, kv_len)

    def aggregate_bandwidth(self, batch: int, kv_len: int = 228) -> float:
        """Cluster-wide achieved memory bandwidth."""
        return self.effective_bandwidth_per_gpu(batch, kv_len) * self.par.num_gpus
