"""Activation (KV-cache) offloading to host memory (Sec. IV-C2/3).

Two concerns are modeled:

* **capacity**: :func:`max_batch_size` computes the largest batch a
  deployment sustains, with and without offloading cached activations to
  DRAM — the "memory optimization" bar of Fig. 10b, since larger batches
  buy throughput;
* **PCIe contention**: on DGX systems two GPUs share one PCIe link.
  :func:`simulate_offload` runs both GPUs' per-layer offload streams
  through the shared link in the discrete-event simulator, under either
  the naive schedule (both offload every layer, colliding) or the
  paper's odd/even schedule (each GPU offloads alternating layers,
  staggered so the link never sees two requests at once) — Sec. IV-C3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..model.config import ModelConfig
from ..simcore import BandwidthLink, Simulator, Timeout, transfer

__all__ = [
    "OffloadReport",
    "kv_offload_overflow",
    "kv_offload_stall_per_step",
    "max_batch_size",
    "moe_max_batch_size",
    "simulate_offload",
]


def max_batch_size(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    tp: int,
    pp: int,
    seq_len: int,
    offload_activations: bool = False,
    dtype: DType = DType.FP16,
    headroom: float = 0.90,
) -> int:
    """Largest batch whose weights + resident KV fit per GPU.

    With offloading, cached activations of layers not currently executing
    live in DRAM; only a small working set (two layers' worth) must stay
    resident, so the GPU budget stops limiting the batch — DRAM capacity
    takes over as the binding constraint.
    """
    if min(tp, pp, seq_len) < 1:
        raise ValueError("tp, pp and seq_len must be >= 1")
    budget = cluster.gpu.memory_bytes * headroom
    weights = config.total_params * dtype.itemsize / (tp * pp)
    if weights >= budget:
        return 0
    kv_per_seq_gpu = seq_len * config.kv_bytes_per_token(dtype) / (tp * pp)
    if not offload_activations:
        return int((budget - weights) / kv_per_seq_gpu)
    # Offloaded: GPU holds ~2 layers of cache; DRAM holds the rest.
    layers_per_stage = max(1, config.layers // pp)
    resident = kv_per_seq_gpu * min(2, layers_per_stage) / layers_per_stage
    gpu_bound = int((budget - weights) / max(resident, 1e-9))
    dram_budget = cluster.node.host.dram_bytes * headroom
    kv_per_seq_node = (
        seq_len * config.kv_bytes_per_token(dtype) / pp
    )  # a node holds one stage's TP group
    dram_bound = int(dram_budget / kv_per_seq_node)
    return max(0, min(gpu_bound, dram_bound))


def moe_max_batch_size(
    config: ModelConfig,
    cluster: ClusterSpec,
    parallelism,
    *,
    seq_len: int,
    dtype: DType = DType.FP16,
    headroom: float = 0.90,
) -> int:
    """Largest batch an MoE deployment's per-GPU memory sustains.

    :func:`max_batch_size` divides the *total* parameter count by
    ``tp * pp``, which is wrong for MoE: the dense trunk is sharded
    ``mp_degree`` ways (and replicated across expert-parallel groups),
    while the expert parameters spread over ``ep_degree *
    expert_slicing`` ranks (Sec. V-A). KV cache lives with the dense
    trunk, so it shards ``mp_degree`` ways.
    """
    if config.moe is None:
        raise ValueError(f"{config.name} is not an MoE model")
    if seq_len < 1:
        raise ValueError("seq_len must be >= 1")
    budget = cluster.gpu.memory_bytes * headroom
    weights = (
        config.base_params / parallelism.mp_degree
        + config.expert_params
        / (parallelism.ep_degree * parallelism.expert_slicing)
    ) * dtype.itemsize
    if weights >= budget:
        return 0
    kv_per_seq_gpu = (
        seq_len * config.kv_bytes_per_token(dtype) / parallelism.mp_degree
    )
    return int((budget - weights) / kv_per_seq_gpu)


def kv_offload_overflow(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    tp: int,
    pp: int,
    batch: int,
    seq_len: int,
    dtype: DType = DType.FP16,
    headroom: float = 0.90,
) -> float:
    """Per-GPU KV bytes that exceed GPU capacity and live in DRAM."""
    weights = config.total_params * dtype.itemsize / (tp * pp)
    capacity = cluster.gpu.memory_bytes * headroom - weights
    kv = batch * seq_len * config.kv_bytes_per_token(dtype) / (tp * pp)
    return max(0.0, kv - capacity)


def kv_offload_stall_per_step(
    config: ModelConfig,
    cluster: ClusterSpec,
    *,
    tp: int,
    pp: int,
    batch: int,
    seq_len: int,
    step_time: float,
    scheme: str = "odd_even",
) -> float:
    """Extra seconds one token step pays to round-trip offloaded KV.

    Each generation step must read the offloaded portion of the cache
    back for attention and write updates out — ``2 x overflow`` bytes per
    GPU per step, spread across the stage's layers and contending on the
    shared PCIe link. The odd/even schedule (Sec. IV-C3) halves the
    pressure; this is the Fig. 10b "communication optimization" bar.
    """
    overflow = kv_offload_overflow(
        config, cluster, tp=tp, pp=pp, batch=batch, seq_len=seq_len
    )
    if overflow <= 0 or step_time <= 0:
        return 0.0
    layers_per_stage = max(1, config.layers // pp)
    rep = simulate_offload(
        cluster,
        num_layers=layers_per_stage,
        bytes_per_layer=2.0 * overflow / layers_per_stage,
        layer_compute_time=step_time / layers_per_stage,
        scheme=scheme,
    )
    return rep.stall_time


@dataclass(frozen=True)
class OffloadReport:
    """Result of simulating one token step's offload traffic."""

    scheme: str
    makespan: float
    link_busy: float
    compute_time: float

    @property
    def stall_time(self) -> float:
        """Time the step ran longer than pure compute — PCIe stalls."""
        return max(0.0, self.makespan - self.compute_time)


def simulate_offload(
    cluster: ClusterSpec,
    *,
    num_layers: int,
    bytes_per_layer: float,
    layer_compute_time: float,
    scheme: str = "odd_even",
) -> OffloadReport:
    """Two GPUs sharing one PCIe link offload per-layer KV chunks while
    computing; return the step makespan under ``scheme``.

    ``naive``: both GPUs offload *every* layer's chunk — each transfer
    contends with its twin. ``odd_even``: GPU0 offloads even layers, GPU1
    odd layers (each GPU's other half remains resident until the next
    step, when roles swap), so transfers interleave without contention
    and each GPU sees the full link bandwidth when it needs it.
    """
    if scheme not in ("naive", "odd_even"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if num_layers < 1 or bytes_per_layer < 0 or layer_compute_time <= 0:
        raise ValueError("invalid workload parameters")

    pcie = cluster.node.pcie
    sim = Simulator()
    link = BandwidthLink(pcie.bandwidth, pcie.latency, name="shared-pcie")

    def offload_proc(nbytes: float):
        yield from transfer(link, nbytes)

    def gpu_proc(gpu: int):
        # Offloads are issued asynchronously (Sec. IV-C3 overlaps them with
        # compute); the step only stalls if the link cannot drain in time.
        for layer in range(num_layers):
            yield Timeout(layer_compute_time)  # compute layer
            mine = scheme == "naive" or layer % 2 == gpu
            if mine:
                sim.spawn(offload_proc(bytes_per_layer),
                          name=f"offload-g{gpu}-l{layer}")

    sim.spawn(gpu_proc(0), name="gpu0")
    sim.spawn(gpu_proc(1), name="gpu1")
    makespan = sim.run()
    return OffloadReport(
        scheme=scheme,
        makespan=makespan,
        link_busy=link.busy_time,
        compute_time=num_layers * layer_compute_time,
    )
