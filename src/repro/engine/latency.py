"""End-to-end dense-model latency model (DeepSpeed Transformer, Secs. III-IV).

Combines, per token step:

* per-layer kernel time from :class:`repro.kernels.KernelCostModel` under
  the configured implementation profile and tensor-parallel degree,
* two tensor-parallel all-reduces per layer over the intra-node fabric,
* the language-model head GeMM on the last stage,
* pipeline-parallel scheduling (when ``pp > 1``) via the discrete-event
  schedule simulator — prompt and generation phases use the configured
  micro-batch policy.

The same class evaluates the FasterTransformer baseline by swapping the
profile and schedule policy, which is how Fig. 6/8/13 comparisons are
produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.hierarchical import CommGroup, hierarchical_allreduce_time
from ..comm.primitives import p2p_time
from ..hardware.specs import DType
from ..hardware.topology import ClusterSpec
from ..kernels.costmodel import KernelCostModel
from ..kernels.graph import LayerShape
from ..kernels.profiles import DEEPSPEED_FP16, ImplementationProfile
from ..model.config import ModelConfig
from ..parallel.schedules import ScheduleResult, simulate_pipeline

__all__ = ["Workload", "LatencyReport", "DenseLatencyModel"]


@dataclass(frozen=True)
class Workload:
    """One inference request batch (Sec. VII-A3 measurement setup)."""

    batch: int
    prompt_len: int
    gen_tokens: int

    def __post_init__(self) -> None:
        if self.batch < 1 or self.prompt_len < 1 or self.gen_tokens < 0:
            raise ValueError("batch, prompt_len >= 1 and gen_tokens >= 0 required")

    @property
    def total_tokens(self) -> int:
        """All tokens the workload produces or consumes."""
        return self.batch * (self.prompt_len + self.gen_tokens)

    @property
    def generated_tokens(self) -> int:
        """Tokens generated (the throughput numerator for generation)."""
        return self.batch * self.gen_tokens


@dataclass(frozen=True)
class LatencyReport:
    """Latency/throughput estimate for one workload on one deployment."""

    workload: Workload
    prompt_latency: float
    token_latency: float  # steady-state per generated token (per step)
    total_latency: float
    kernel_time_per_step: float
    comm_time_per_step: float
    num_gpus: int
    flops_per_step: float

    @property
    def tokens_per_second(self) -> float:
        """End-to-end generated-token throughput."""
        if self.total_latency <= 0:
            return 0.0
        return self.workload.generated_tokens / self.total_latency

    @property
    def tflops_per_gpu(self) -> float:
        """Achieved compute throughput per GPU during generation."""
        if self.token_latency <= 0:
            return 0.0
        return self.flops_per_step / self.token_latency / self.num_gpus / 1e12


class DenseLatencyModel:
    """Latency model for a dense GPT deployment (TP x PP on a cluster)."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: ClusterSpec,
        *,
        tp: int = 1,
        pp: int = 1,
        profile: ImplementationProfile = DEEPSPEED_FP16,
        lockstep_generation: bool = False,
        hybrid_prompt_factor: int = 1,
        hierarchical_comm: bool = True,
    ) -> None:
        """``hybrid_prompt_factor`` multiplies the prompt-phase micro-batch
        count relative to generation (Sec. IV-C1's hybrid scheduling);
        ``lockstep_generation`` selects the baseline Fig. 2a policy;
        ``hierarchical_comm=False`` degrades cross-node all-reduces to a
        flat inter-node ring (what a topology-unaware runtime pays when
        tensor slicing spills past the NVLink island, Sec. IV-A).

        Tensor parallelism past a node is allowed — the paper's Fig. 6
        runs 175B at TP=16 — but the inter-node all-reduce cost then
        lands on every layer, which is exactly why Sec. IV-A recommends
        confining TP to a node.
        """
        if tp < 1 or pp < 1:
            raise ValueError("tp and pp must be >= 1")
        if config.layers < pp:
            raise ValueError("more pipeline stages than layers")
        if tp * pp > cluster.num_gpus:
            raise ValueError(
                f"deployment needs {tp * pp} GPUs, cluster has {cluster.num_gpus}"
            )
        if hybrid_prompt_factor < 1:
            raise ValueError("hybrid_prompt_factor must be >= 1")
        self.config = config
        self.cluster = cluster
        self.tp = tp
        self.pp = pp
        self.profile = profile
        self.lockstep_generation = lockstep_generation
        self.hybrid_prompt_factor = hybrid_prompt_factor
        self.hierarchical_comm = hierarchical_comm
        self.kernel_model = KernelCostModel(cluster.gpu, profile)
        self._tp_group = (
            CommGroup(cluster, list(range(tp))) if tp > 1 else None
        )

    @property
    def num_gpus(self) -> int:
        """GPUs this deployment occupies."""
        return self.tp * self.pp

    # -- per-step building blocks ------------------------------------------

    def _layer_shape(self, batch: int, tokens_per_seq: int, kv_len: int) -> LayerShape:
        return LayerShape(
            hidden=self.config.hidden,
            heads=self.config.heads,
            batch=batch,
            tokens_per_seq=tokens_per_seq,
            kv_len=kv_len,
            dtype=DType.FP16,
            tp_degree=self.tp,
            ffn_mult=self.config.ffn_mult,
        )

    def layer_time(self, batch: int, tokens_per_seq: int, kv_len: int) -> tuple[float, float]:
        """(kernel seconds, comm seconds) for one layer on one TP rank."""
        shape = self._layer_shape(batch, tokens_per_seq, kv_len)
        kernel = self.kernel_model.layer_cost(shape).total_time
        comm = 0.0
        if self._tp_group is not None:
            act_bytes = shape.act_bytes
            if self.hierarchical_comm or self._tp_group.is_single_node:
                one = hierarchical_allreduce_time(self._tp_group, act_bytes).total
            else:
                from ..comm.primitives import allreduce_time

                one = allreduce_time(
                    self.cluster.inter_link, act_bytes, self.tp
                ).total
            comm = 2.0 * one  # two all-reduces per layer (Sec. IV-A)
        return kernel, comm

    def lm_head_time(self, batch: int, tokens_per_seq: int) -> float:
        """Final logits GeMM (vocab-sharded across TP ranks)."""
        tokens = batch * tokens_per_seq
        weight = self.config.vocab * self.config.hidden / self.tp
        w_bytes = weight * self.profile.weight_dtype.itemsize
        flops = 2.0 * tokens * weight
        bw = self.cluster.gpu.mem_bw * 0.7
        peak = self.cluster.gpu.peak_flops(self.profile.compute_dtype) * 0.6
        return max(w_bytes / bw, flops / peak)

    def step_time(self, batch: int, tokens_per_seq: int, kv_len: int) -> tuple[float, float]:
        """(kernel, comm) seconds for a full forward pass of the model
        (all layers; the per-stage division is the scheduler's business)."""
        k1, c1 = self.layer_time(batch, tokens_per_seq, kv_len)
        kernels = k1 * self.config.layers + self.lm_head_time(batch, tokens_per_seq)
        comm = c1 * self.config.layers
        return kernels, comm

    def stage_time(self, batch: int, tokens_per_seq: int, kv_len: int) -> float:
        """Seconds one pipeline stage spends on one micro-batch."""
        k, c = self.layer_time(batch, tokens_per_seq, kv_len)
        per_stage_layers = self.config.layers / self.pp
        t = (k + c) * per_stage_layers
        # Last stage also computes logits; amortize over stages to keep the
        # schedule homogeneous (error is < 1 layer's time).
        t += self.lm_head_time(batch, tokens_per_seq) / self.pp
        return t

    def _p2p_act_time(self, batch: int, tokens_per_seq: int) -> float:
        nbytes = batch * tokens_per_seq * self.config.hidden * DType.FP16.itemsize
        return p2p_time(self.cluster.inter_link, nbytes)

    # -- end to end ---------------------------------------------------------

    def estimate(self, workload: Workload) -> LatencyReport:
        """Full prompt + generation latency for ``workload``."""
        kv_end = workload.prompt_len + workload.gen_tokens
        if self.pp == 1:
            pk, pc = self.step_time(workload.batch, workload.prompt_len,
                                    workload.prompt_len)
            prompt = pk + pc
            gk, gc = self.step_time(workload.batch, 1, kv_end)
            token = gk + gc
            total = prompt + token * workload.gen_tokens
            return LatencyReport(
                workload=workload,
                prompt_latency=prompt,
                token_latency=token,
                total_latency=total,
                kernel_time_per_step=gk,
                comm_time_per_step=gc,
                num_gpus=self.num_gpus,
                flops_per_step=self._gen_step_flops(workload),
            )
        return self._estimate_pipelined(workload)

    def _estimate_pipelined(self, workload: Workload) -> LatencyReport:
        gen_mb = self.pp  # P micro-batches keeps every stage busy (Sec. IV-C1)
        prompt_mb = gen_mb * self.hybrid_prompt_factor
        mb_batch = max(1, workload.batch // gen_mb)
        pmb_batch = max(1, workload.batch // prompt_mb)
        kv_end = workload.prompt_len + workload.gen_tokens

        prompt_stage = self.stage_time(pmb_batch, workload.prompt_len,
                                       workload.prompt_len)
        gen_stage = self.stage_time(mb_batch, 1, kv_end)
        result: ScheduleResult = simulate_pipeline(
            num_stages=self.pp,
            prompt_microbatches=prompt_mb,
            gen_microbatches=gen_mb,
            gen_tokens=workload.gen_tokens,
            prompt_stage_time=prompt_stage,
            gen_stage_time=gen_stage,
            p2p_time=self._p2p_act_time(mb_batch, 1),
            lockstep_generation=self.lockstep_generation,
        )
        gk, gc = self.layer_time(mb_batch, 1, kv_end)
        per_token = (
            result.generation_time / workload.gen_tokens
            if workload.gen_tokens
            else 0.0
        )
        return LatencyReport(
            workload=workload,
            prompt_latency=result.prompt_done,
            token_latency=per_token,
            total_latency=result.makespan,
            kernel_time_per_step=gk * self.config.layers,
            comm_time_per_step=gc * self.config.layers,
            num_gpus=self.num_gpus,
            flops_per_step=self._gen_step_flops(workload),
        )

    def _gen_step_flops(self, workload: Workload) -> float:
        """Math work of one generation step across the whole model."""
        kv = workload.prompt_len + workload.gen_tokens
        return workload.batch * self.config.flops_per_token(kv_len=kv)
