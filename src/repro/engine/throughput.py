"""Throughput search: the best-batch sweep behind Fig. 8.

Sec. VII-C runs each system at "batch sizes that give the best
performance for each configuration". This module sweeps feasible batch
sizes (bounded by :func:`repro.engine.offload.max_batch_size`) and
returns the best-throughput operating point for a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.topology import ClusterSpec
from .latency import DenseLatencyModel, LatencyReport, Workload
from .offload import kv_offload_stall_per_step, max_batch_size

__all__ = ["ThroughputPoint", "best_throughput", "candidate_batches"]


@dataclass(frozen=True)
class ThroughputPoint:
    """Best operating point found by the batch sweep.

    ``stall_per_step`` is the per-token PCIe stall from KV offloading
    (zero when the cache fits on-GPU); it is already included in
    :attr:`tokens_per_second`.
    """

    batch: int
    report: LatencyReport
    stall_per_step: float = 0.0

    @property
    def total_latency(self) -> float:
        """Workload latency including offload stalls."""
        return (
            self.report.total_latency
            + self.stall_per_step * self.report.workload.gen_tokens
        )

    @property
    def tokens_per_second(self) -> float:
        """Generated-token throughput at the chosen batch."""
        if self.total_latency <= 0:
            return 0.0
        return self.report.workload.generated_tokens / self.total_latency


def candidate_batches(max_batch: int) -> list[int]:
    """Power-of-two sweep up to ``max_batch`` (plus ``max_batch`` itself)."""
    if max_batch < 1:
        return []
    out = []
    b = 1
    while b <= max_batch:
        out.append(b)
        b *= 2
    if out[-1] != max_batch:
        out.append(max_batch)
    return out


def best_throughput(
    model: DenseLatencyModel,
    *,
    prompt_len: int,
    gen_tokens: int,
    offload_activations: bool = False,
    offload_scheme: str = "odd_even",
    batch_cap: int | None = None,
) -> ThroughputPoint:
    """Sweep batch sizes and return the highest-throughput point.

    ``offload_activations`` raises the feasible batch ceiling (Sec. IV-C2),
    but each offloaded step pays a PCIe round-trip for the overflow KV;
    the sweep includes that stall, so an interior optimum batch emerges.
    ``offload_scheme`` selects naive vs odd/even PCIe scheduling
    (Sec. IV-C3) — together these produce the Fig. 10b bars.
    """
    seq = prompt_len + gen_tokens
    cap = max_batch_size(
        model.config,
        model.cluster,
        tp=model.tp,
        pp=model.pp,
        seq_len=seq,
        offload_activations=offload_activations,
    )
    if batch_cap is not None:
        cap = min(cap, batch_cap)
    if cap < 1:
        raise ValueError(
            f"{model.config.name} cannot run even batch 1 on this deployment"
        )
    candidates = candidate_batches(cap)
    if offload_activations:
        # The GPU-resident ceiling is always a candidate: offloading must
        # never look worse than not offloading.
        resident_cap = max_batch_size(
            model.config, model.cluster, tp=model.tp, pp=model.pp,
            seq_len=seq, offload_activations=False,
        )
        if 1 <= resident_cap <= cap and resident_cap not in candidates:
            candidates = sorted(set(candidates) | {resident_cap})
    best: ThroughputPoint | None = None
    for b in candidates:
        report = model.estimate(Workload(batch=b, prompt_len=prompt_len,
                                         gen_tokens=gen_tokens))
        stall = 0.0
        if offload_activations:
            stall = kv_offload_stall_per_step(
                model.config,
                model.cluster,
                tp=model.tp,
                pp=model.pp,
                batch=b,
                seq_len=seq,
                step_time=report.token_latency,
                scheme=offload_scheme,
            )
        point = ThroughputPoint(batch=b, report=report, stall_per_step=stall)
        if best is None or point.tokens_per_second > best.tokens_per_second:
            best = point
    assert best is not None
    return best


def gpu_only_max_model_params(cluster: ClusterSpec, *, dtype_bytes: int = 2,
                              headroom: float = 0.90) -> float:
    """Largest parameter count a GPU-only deployment can hold (Fig. 9b's
    25x comparison baseline)."""
    return cluster.aggregate_gpu_memory * headroom / dtype_bytes
