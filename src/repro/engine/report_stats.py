"""Shared serving-report statistics.

:class:`~repro.engine.serving_sim.ServingReport` (one server) and
:class:`~repro.fleet.report.FleetReport` (N replicas) answer the same
per-request questions — end-to-end latency, time to first token, their
percentiles, sustained throughput — from the same four fields. This
mixin holds those definitions once, so the single-server and fleet
numbers can never drift apart in formula.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReportStats"]


class ReportStats:
    """Percentile/throughput views over a serving outcome.

    Consumers must provide ``finish_times`` and ``first_token_times``
    (request id → absolute seconds), ``makespan``, and ``total_tokens``
    (tokens of completed requests). All times are measured from each
    request's *original* arrival — a retried request's clock keeps
    running through a crash.
    """

    def latency(self, request) -> float:
        """End-to-end latency of one request."""
        return self.finish_times[request.request_id] - request.arrival

    def ttft(self, request) -> float:
        """Time to the first token that survived into the final output."""
        return self.first_token_times[request.request_id] - request.arrival

    def _percentile(self, values: list[float], q: float) -> float:
        return float(np.percentile(np.array(values), q))

    def latency_percentile(self, trace, q: float) -> float:
        """qth percentile of end-to-end latency over ``trace``."""
        return self._percentile([self.latency(r) for r in trace.requests], q)

    def ttft_percentile(self, trace, q: float) -> float:
        """qth percentile of time to first token over ``trace``."""
        return self._percentile([self.ttft(r) for r in trace.requests], q)

    # -- per-tenant views -----------------------------------------------------

    def tenants(self, trace) -> list:
        """Distinct tenant tags in ``trace``, in first-appearance order
        (``None`` appears if any request is untagged)."""
        seen: dict = {}
        for r in trace.requests:
            seen.setdefault(r.tenant, None)
        return list(seen)

    def tenant_requests(self, trace, tenant) -> list:
        """The requests of ``trace`` billed to ``tenant``."""
        got = [r for r in trace.requests if r.tenant == tenant]
        if not got:
            raise ValueError(f"no requests for tenant {tenant!r}")
        return got

    def tenant_latency_percentile(self, trace, tenant, q: float) -> float:
        """qth percentile of end-to-end latency over one tenant's
        requests — the number checked against that tenant's SLA."""
        return self._percentile(
            [self.latency(r) for r in self.tenant_requests(trace, tenant)], q)

    def tenant_ttft_percentile(self, trace, tenant, q: float) -> float:
        """qth percentile of time to first token over one tenant's
        requests."""
        return self._percentile(
            [self.ttft(r) for r in self.tenant_requests(trace, tenant)], q)

    @property
    def tokens_per_second(self) -> float:
        """Sustained generation throughput over the busy period."""
        return self.total_tokens / self.makespan if self.makespan > 0 else 0.0

    @property
    def kv_dedup_ratio(self) -> float:
        """Fraction of would-be KV block allocations that prefix sharing
        deduplicated away (0.0 when nothing was allocated). Consumers
        provide ``kv_blocks_allocated`` and ``kv_blocks_saved``."""
        would_be = self.kv_blocks_allocated + self.kv_blocks_saved
        if not would_be:
            return 0.0
        return self.kv_blocks_saved / would_be
