"""Serving-level simulation: request arrivals, queueing, percentiles.

The paper's latency/throughput numbers are per-batch; production systems
(Sec. I's "online scenarios") face *arrival processes*: requests queue,
join the running batch, and leave on completion. This module synthesizes
request traces and replays them through a continuous-batching server
whose per-iteration costs come from any step-time model (the dense
latency engine supplies them), reporting time-to-first-token and
end-to-end latency percentiles plus sustained throughput — the numbers
an operator actually quotes against an SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Request",
    "WorkloadTrace",
    "synthesize_trace",
    "ServingReport",
    "simulate_serving",
    "serving_step_times",
]


@dataclass(frozen=True)
class Request:
    """One request of a trace."""

    request_id: int
    arrival: float
    prompt_len: int
    gen_tokens: int

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.prompt_len < 1 or self.gen_tokens < 1:
            raise ValueError("invalid request parameters")


@dataclass(frozen=True)
class WorkloadTrace:
    """A reproducible request trace."""

    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a trace needs at least one request")
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            raise ValueError("requests must be sorted by arrival time")

    @property
    def duration(self) -> float:
        """Span of the arrival process."""
        return self.requests[-1].arrival - self.requests[0].arrival

    @property
    def total_gen_tokens(self) -> int:
        """Tokens the trace asks for."""
        return sum(r.gen_tokens for r in self.requests)


def synthesize_trace(
    *,
    num_requests: int,
    arrival_rate: float,
    mean_prompt: int = 128,
    mean_gen: int = 32,
    seed: int = 0,
) -> WorkloadTrace:
    """Poisson arrivals with geometric-ish prompt/generation lengths."""
    if num_requests < 1 or arrival_rate <= 0:
        raise ValueError("num_requests >= 1 and arrival_rate > 0 required")
    if mean_prompt < 1 or mean_gen < 1:
        raise ValueError("mean lengths must be >= 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    arrivals = np.cumsum(gaps)
    prompts = np.maximum(1, rng.poisson(mean_prompt, size=num_requests))
    gens = np.maximum(1, rng.poisson(mean_gen, size=num_requests))
    return WorkloadTrace(
        tuple(
            Request(i, float(arrivals[i]), int(prompts[i]), int(gens[i]))
            for i in range(num_requests)
        )
    )


@dataclass
class _Live:
    req: Request
    remaining: int
    start: float
    first_token: float | None = None


@dataclass(frozen=True)
class ServingReport:
    """Outcome of replaying one trace."""

    makespan: float
    finish_times: dict[int, float]
    first_token_times: dict[int, float]
    queue_delays: dict[int, float]
    total_tokens: int

    def latency(self, request: Request) -> float:
        """End-to-end latency of one request."""
        return self.finish_times[request.request_id] - request.arrival

    def _percentile(self, values: list[float], q: float) -> float:
        return float(np.percentile(np.array(values), q))

    def latency_percentile(self, trace: WorkloadTrace, q: float) -> float:
        """qth percentile of end-to-end latency."""
        return self._percentile([self.latency(r) for r in trace.requests], q)

    def ttft_percentile(self, trace: WorkloadTrace, q: float) -> float:
        """qth percentile of time to first token."""
        return self._percentile(
            [self.first_token_times[r.request_id] - r.arrival
             for r in trace.requests],
            q,
        )

    @property
    def tokens_per_second(self) -> float:
        """Sustained generation throughput over the busy period."""
        return self.total_tokens / self.makespan if self.makespan > 0 else 0.0


def simulate_serving(
    trace: WorkloadTrace,
    *,
    prompt_time: Callable[[int, int], float],
    step_time: Callable[[int], float],
    max_batch: int,
) -> ServingReport:
    """Replay ``trace`` through a continuous-batching server.

    ``prompt_time(batch_tokens, prompt_len)`` prices admitting one
    request's prompt; ``step_time(batch)`` prices one decode iteration
    generating one token for each of ``batch`` live sequences. Both come
    from the performance model (see :func:`serving_step_times`).
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    pending = list(trace.requests)
    live: list[_Live] = []
    now = 0.0
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    total_tokens = 0

    while pending or live:
        # Fast-forward to the next arrival when idle.
        if not live and pending and pending[0].arrival > now:
            now = pending[0].arrival
        # Admit arrivals into free slots, paying their prompt passes.
        while pending and pending[0].arrival <= now and len(live) < max_batch:
            req = pending.pop(0)
            delays[req.request_id] = now - req.arrival
            now += prompt_time(len(live) + 1, req.prompt_len)
            live.append(_Live(req=req, remaining=req.gen_tokens, start=now))
            first[req.request_id] = now  # prompt pass yields token 1
            total_tokens += 1
            live[-1].remaining -= 1
            live[-1].first_token = now
            if live[-1].remaining == 0:
                finish[req.request_id] = now
                live.pop()
        if not live:
            continue
        # One decode iteration for every live sequence.
        now += step_time(len(live))
        total_tokens += len(live)
        still: list[_Live] = []
        for s in live:
            s.remaining -= 1
            if s.remaining <= 0:
                finish[s.req.request_id] = now
            else:
                still.append(s)
        live = still

    return ServingReport(
        makespan=now,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        total_tokens=total_tokens,
    )


def serving_step_times(latency_model, *, mean_prompt: int, mean_gen: int):
    """Build (prompt_time, step_time) callables from a dense latency model.

    The decode step is priced at a representative KV length (prompt plus
    half the generation); prompt passes at their own length.
    """
    kv = mean_prompt + mean_gen // 2

    def prompt_time(batch: int, prompt_len: int) -> float:
        k, c = latency_model.step_time(1, prompt_len, prompt_len)
        return k + c

    def step_time(batch: int) -> float:
        k, c = latency_model.step_time(max(1, batch), 1, kv)
        return k + c

    return prompt_time, step_time
