"""Serving-level simulation: request arrivals, queueing, percentiles.

The paper's latency/throughput numbers are per-batch; production systems
(Sec. I's "online scenarios") face *arrival processes*: requests queue,
join the running batch, and leave on completion. This module synthesizes
request traces and replays them through a continuous-batching server
whose per-iteration costs come from any :class:`~repro.engine.costs
.StepCostModel` — dense, MoE, or ZeRO-offloaded — reporting
time-to-first-token and end-to-end latency percentiles plus sustained
throughput — the numbers an operator actually quotes against an SLA.

Admission and retirement decisions are **not** made here: the replay
drives the same :class:`~repro.engine.scheduler.Scheduler` that the
functional :class:`~repro.engine.generation.GenerationSession` uses, and
merely *prices* its decisions with the cost model — so the analytical
and functional serving paths cannot diverge. The scheduler (with its
event log) and a priced :class:`~repro.simcore.trace.Timeline` come back
on the report for chrome-trace export.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..rng import SeedLike, as_generator
from ..simcore.trace import Timeline
from .costs import BatchState, DenseStepCost, PromptShape, StepCostModel, resolve_step_costs
from .report_stats import ReportStats
from .scheduler import SchedRequest, Scheduler

__all__ = [
    "Request",
    "WorkloadTrace",
    "synthesize_trace",
    "ServingReport",
    "simulate_serving",
    "simulate_serving_reference",
    "serving_step_times",
    "batch_state_of",
    "SUMMARY_DETAIL_THRESHOLD",
]

#: ``detail="auto"`` switches to ``"summary"`` timelines at this trace
#: size — per-request lanes allocate O(requests) span objects that
#: nobody exporting only percentiles ever reads.
SUMMARY_DETAIL_THRESHOLD = 10_000

# Cap on how many decode iterations one vectorized pricing call covers
# while an event with a *time* bound (an arrival, a fault) is pending —
# those can split the run mid-stretch, so pricing far past them is
# wasted work for per-step cost models. Without such an event the next
# retirement bounds the run exactly and no cap is needed. Chunking is
# observably identical (the loop just re-enters mid-stretch).
_RUN_CHUNK_STEPS = 256


@dataclass(frozen=True)
class Request:
    """One request of a trace.

    ``session`` optionally tags the request with a conversation/user id;
    the fleet layer's affinity routing keeps one session's requests on
    one replica (warm prefix/KV locality). ``None`` means unaffiliated.
    """

    request_id: int
    arrival: float
    prompt_len: int
    gen_tokens: int
    session: int | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.prompt_len < 1 or self.gen_tokens < 1:
            raise ValueError("invalid request parameters")

    @property
    def work_tokens(self) -> int:
        """Total token work the request represents (prompt + generation);
        the unit the fleet router balances across replicas."""
        return self.prompt_len + self.gen_tokens


@dataclass(frozen=True)
class WorkloadTrace:
    """A reproducible request trace.

    ``expert_skew`` annotates MoE traces with the Zipf-s gate skew the
    workload was synthesized under (``None`` = unknown/uniform); the
    tuners read it to decide whether skew-aware expert placement is
    worth sweeping.
    """

    requests: tuple[Request, ...]
    expert_skew: float | None = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a trace needs at least one request")
        if self.expert_skew is not None and self.expert_skew < 0:
            raise ValueError("expert_skew must be >= 0 when given")
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            raise ValueError("requests must be sorted by arrival time")
        ids = [r.request_id for r in self.requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique within a trace "
                             "(duplicates would corrupt scheduler state)")

    @property
    def duration(self) -> float:
        """Span of the arrival process."""
        return self.requests[-1].arrival - self.requests[0].arrival

    @property
    def total_gen_tokens(self) -> int:
        """Tokens the trace asks for."""
        return sum(r.gen_tokens for r in self.requests)


# Candidate arrivals per thinning round. Fixed (never adaptive) so the
# accept/reject stream — and therefore the trace — is a pure function of
# the seed, independent of how many rounds the target count takes.
_THINNING_CHUNK = 4096


def _thinned_arrivals(
    rng: np.random.Generator,
    num_requests: int,
    rate_of: Callable[[np.ndarray], np.ndarray],
    rate_max: float,
) -> np.ndarray:
    """First ``num_requests`` arrivals of the inhomogeneous Poisson
    process with intensity ``rate_of(t) <= rate_max``, by chunked
    vectorized thinning (Lewis-Shedler): candidates arrive at the
    homogeneous ``rate_max`` and survive with probability
    ``rate_of(t) / rate_max``."""
    kept: list[np.ndarray] = []
    total = 0
    t = 0.0
    while total < num_requests:
        gaps = rng.exponential(1.0 / rate_max, size=_THINNING_CHUNK)
        cand = t + np.cumsum(gaps)
        t = float(cand[-1])
        u = rng.random(size=_THINNING_CHUNK)
        keep = cand[u * rate_max < rate_of(cand)]
        kept.append(keep)
        total += len(keep)
    return np.concatenate(kept)[:num_requests]


def synthesize_trace(
    *,
    num_requests: int,
    arrival_rate: float,
    mean_prompt: int = 128,
    mean_gen: int = 32,
    num_sessions: int | None = None,
    expert_skew: float | None = None,
    arrival_shape: str = "poisson",
    diurnal_amplitude: float = 0.8,
    diurnal_period: float | None = None,
    burst_factor: float = 8.0,
    num_bursts: int = 2,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Synthesize a request trace with Poisson-ish lengths and a chosen
    arrival process.

    ``arrival_shape`` selects the arrival process:

    * ``"poisson"`` (default) — homogeneous Poisson at ``arrival_rate``;
      the historical behavior, bit-for-bit (same seed, same trace).
    * ``"diurnal"`` — inhomogeneous Poisson with a sinusoidal intensity
      ``arrival_rate * (1 + diurnal_amplitude * sin(2*pi*t / period))``:
      a day/night load cycle. The *mean* rate stays ``arrival_rate``
      (the sine averages out), so fixed-vs-autoscaled comparisons at
      equal average cost are fair. ``diurnal_period`` defaults to half
      the nominal trace span (two full cycles per trace).
    * ``"flash_crowd"`` — ``arrival_rate`` baseline with ``num_bursts``
      evenly spaced windows at ``burst_factor`` times the base rate
      (each 4% of the nominal span wide): a link-from-the-frontpage
      spike.

    The non-homogeneous shapes draw arrivals by chunked vectorized
    thinning with a fixed chunk size, so every shape is a pure function
    of the seed. ``num_sessions`` tags each request with a session id
    drawn uniformly from ``range(num_sessions)`` (for the fleet layer's
    affinity routing); ``None`` leaves requests unaffiliated.
    ``expert_skew`` stamps the trace with a Zipf-s gate skew (see
    :func:`repro.moe_placement.zipf_expert_probs`) so MoE benchmarks can
    regenerate the matching gate stream from the same seed. ``seed``
    takes an int or a live :class:`numpy.random.Generator` to thread one
    stream through a composite workflow (see :mod:`repro.rng`).
    """
    if num_requests < 1 or arrival_rate <= 0:
        raise ValueError("num_requests >= 1 and arrival_rate > 0 required")
    if mean_prompt < 1 or mean_gen < 1:
        raise ValueError("mean lengths must be >= 1")
    if num_sessions is not None and num_sessions < 1:
        raise ValueError("num_sessions must be >= 1 when given")
    if expert_skew is not None and expert_skew < 0:
        raise ValueError("expert_skew must be >= 0 when given")
    shapes = ("poisson", "diurnal", "flash_crowd")
    if arrival_shape not in shapes:
        raise ValueError(
            f"unknown arrival_shape {arrival_shape!r}; choose from {shapes}")
    rng = as_generator(seed)
    nominal_span = num_requests / arrival_rate
    if arrival_shape == "poisson":
        # Historical draw order, preserved verbatim: existing seeds must
        # keep producing the same traces.
        gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
        arrivals = np.cumsum(gaps)
    elif arrival_shape == "diurnal":
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        period = (nominal_span / 2.0 if diurnal_period is None
                  else diurnal_period)
        if period <= 0:
            raise ValueError("diurnal_period must be > 0 when given")
        omega = 2.0 * np.pi / period

        def rate_of(t: np.ndarray) -> np.ndarray:
            return arrival_rate * (1.0 + diurnal_amplitude * np.sin(omega * t))

        arrivals = _thinned_arrivals(
            rng, num_requests, rate_of,
            arrival_rate * (1.0 + diurnal_amplitude))
    else:  # flash_crowd
        if burst_factor <= 1.0:
            raise ValueError("burst_factor must be > 1")
        if num_bursts < 1:
            raise ValueError("num_bursts must be >= 1")
        centers = np.array([(j + 0.5) / num_bursts * nominal_span
                            for j in range(num_bursts)])
        half_width = 0.02 * nominal_span

        def rate_of(t: np.ndarray) -> np.ndarray:
            in_burst = (np.abs(t[:, None] - centers[None, :])
                        <= half_width).any(axis=1)
            return arrival_rate * np.where(in_burst, burst_factor, 1.0)

        arrivals = _thinned_arrivals(
            rng, num_requests, rate_of, arrival_rate * burst_factor)
    prompts = np.maximum(1, rng.poisson(mean_prompt, size=num_requests))
    gens = np.maximum(1, rng.poisson(mean_gen, size=num_requests))
    sessions = (None if num_sessions is None
                else rng.integers(0, num_sessions, size=num_requests))
    return WorkloadTrace(
        tuple(
            Request(i, float(arrivals[i]), int(prompts[i]), int(gens[i]),
                    session=None if sessions is None else int(sessions[i]))
            for i in range(num_requests)
        ),
        expert_skew=expert_skew,
    )


@dataclass(frozen=True)
class ServingReport(ReportStats):
    """Outcome of replaying one trace.

    Percentile/throughput views (``latency``, ``ttft``,
    ``latency_percentile``, ``ttft_percentile``, ``tokens_per_second``)
    come from :class:`~repro.engine.report_stats.ReportStats`, shared
    with the fleet layer's report.
    """

    makespan: float
    finish_times: dict[int, float]
    first_token_times: dict[int, float]
    queue_delays: dict[int, float]
    total_tokens: int
    scheduler: Scheduler | None = field(default=None, compare=False)
    timeline: Timeline | None = field(default=None, compare=False)


def batch_state_of(
    sched: Scheduler,
    prompt_lens: dict[int, int],
    *,
    exclude: int | None = None,
) -> BatchState:
    """The live batch's :class:`BatchState` as seen by the scheduler.

    Each active sequence's KV length is its prompt plus the tokens
    recorded so far; ``exclude`` drops one request id (used to price a
    prompt pass against the *riders*, not the newcomer itself).
    """
    return BatchState(tuple(
        prompt_lens[rid] + sched.generated(rid)
        for rid in sched.active if rid != exclude
    ))


def _resolve_detail(detail: str, num_requests: int) -> bool:
    """True for full per-step/per-request timelines, False for summary."""
    if detail not in ("auto", "full", "summary"):
        raise ValueError(
            f"unknown detail {detail!r}; choose 'auto', 'full' or 'summary'")
    if detail == "auto":
        return num_requests < SUMMARY_DETAIL_THRESHOLD
    return detail == "full"


def simulate_serving(
    trace: WorkloadTrace,
    *,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
    detail: str = "auto",
) -> ServingReport:
    """Replay ``trace`` through a continuous-batching server.

    Lifecycle decisions come from the shared
    :class:`~repro.engine.scheduler.Scheduler` (the same class the
    functional engine runs); this function only maps arrivals into the
    queue and prices the scheduler's decisions with ``costs`` (any
    :class:`~repro.engine.costs.StepCostModel`:
    :class:`~repro.engine.costs.DenseStepCost`,
    :class:`~repro.engine.costs.MoEStepCost`,
    :class:`~repro.engine.costs.ZeroStepCost`, ...). The legacy
    ``prompt_time(batch, prompt_len)`` / ``step_time(batch)`` closure
    pair is still accepted in place of ``costs``.

    The replay is *event-compressed*: between scheduler-relevant events
    (the next arrival, the next length retirement) the batch composition
    is frozen, so whole stretches of decode iterations are priced with
    one :meth:`~repro.engine.costs.StepCostModel.decode_run_cost` call
    and committed with one bulk
    :meth:`~repro.engine.scheduler.Scheduler.record_tokens`. Reports are
    bit-for-bit identical to the retained per-step oracle
    (:func:`simulate_serving_reference`) — same makespan, same
    per-request times, same scheduler event log.

    ``detail`` controls timeline fidelity: ``"full"`` records per-step
    server spans and per-request queued/decode lanes; ``"summary"``
    records one aggregated server span per compressed stretch and skips
    the per-request lanes (O(requests) span objects saved); ``"auto"``
    (default) picks summary at :data:`SUMMARY_DETAIL_THRESHOLD` requests
    and full below it. The *report* numbers are identical at every
    level.

    The returned report carries the scheduler (event log, orderings) and
    a priced :class:`Timeline` — exportable with
    ``timeline.to_chrome_trace()``.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    full = _resolve_detail(detail, len(trace.requests))
    cost_model = resolve_step_costs(costs, prompt_time, step_time)
    sched = Scheduler(max_batch, policy=policy)
    timeline = Timeline()
    requests = trace.requests
    cursor = 0  # arrival cursor: O(1) per drain, no per-call trace copy
    admit_at: dict[int, float] = {}
    now = 0.0
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    total_tokens = 0
    # Incrementally maintained batch view: rid -> prompt + generated, in
    # admission order (mirrors ``sched.active``), replacing per-step
    # ``batch_state_of`` rebuilds.
    live_kv: dict[int, int] = {}

    def enqueue_arrived() -> None:
        nonlocal cursor
        while cursor < len(requests) and requests[cursor].arrival <= now:
            r = requests[cursor]
            cursor += 1
            sched.enqueue(SchedRequest(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.gen_tokens,
                arrival=r.arrival,
            ))

    while cursor < len(requests) or sched.num_waiting or sched.num_active:
        # Fast-forward to the next arrival when idle.
        if (not sched.num_active and not sched.num_waiting
                and cursor < len(requests)
                and requests[cursor].arrival > now):
            now = requests[cursor].arrival
        enqueue_arrived()
        # Admit one at a time, paying each prompt pass, so requests
        # arriving *during* a prompt pass can join this round's queue.
        while True:
            admitted = sched.admit(max_admit=1)
            if not admitted:
                break
            s = admitted[0]
            delays[s.request_id] = now - s.arrival
            start = now
            # ``live_kv`` excludes the newcomer by construction: it is
            # inserted only after its prompt pass is priced.
            now += cost_model.prompt_cost(
                BatchState(tuple(live_kv.values())), s)
            timeline.record("server", start, now, f"prefill r{s.request_id}")
            if full:
                timeline.record(f"req-{s.request_id}", s.arrival, start,
                                "queued")
            admit_at[s.request_id] = now
            first[s.request_id] = now  # prompt pass yields token 1
            total_tokens += 1
            if sched.record_token(s.request_id) is not None:
                finish[s.request_id] = now
                if full:
                    timeline.record(f"req-{s.request_id}", start, now,
                                    "decode")
            else:
                live_kv[s.request_id] = s.prompt_len + 1
            enqueue_arrived()
        if not sched.num_active:
            continue
        # Event-compressed decode: until the next arrival or length
        # retirement the batch is frozen, so price the whole stretch in
        # one vectorized call and commit it in one bulk advance. The
        # cumsum *includes* ``now`` so the float additions associate
        # exactly as the per-step ``now += cost`` loop.
        batch = sched.num_active
        horizon = sched.decode_horizon()
        if cursor < len(requests):
            horizon = min(horizon, _RUN_CHUNK_STEPS)
        run = cost_model.decode_run_cost(
            BatchState(tuple(live_kv.values())), horizon)
        buf = np.empty(horizon + 1)
        buf[0] = now
        buf[1:] = run
        ends = np.cumsum(buf, out=buf)[1:]
        n = horizon
        if cursor < len(requests):
            # Steps are pure only while every intermediate loop-top stays
            # strictly before the next arrival's enqueue point.
            k = int(np.searchsorted(ends, requests[cursor].arrival,
                                    side="left"))
            n = min(n, k + 1)
        ends_list = ends[:n].tolist()  # exact float64 -> float
        start = now
        now = ends_list[-1]
        retired = sched.record_tokens(n)
        total_tokens += n * batch
        if full:
            s_prev = start
            for e in ends_list:
                timeline.record("server", s_prev, e, f"decode x{batch}")
                s_prev = e
        else:
            timeline.record("server", start, now,
                            f"decode x{batch} ({n} steps)")
        for rid in retired:
            finish[rid] = now
            if full:
                timeline.record(f"req-{rid}", admit_at[rid], now, "decode")
            del live_kv[rid]
        for rid in live_kv:
            live_kv[rid] += n

    return ServingReport(
        makespan=now,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        total_tokens=total_tokens,
        scheduler=sched,
        timeline=timeline,
    )


def simulate_serving_reference(
    trace: WorkloadTrace,
    *,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
) -> ServingReport:
    """Per-step reference oracle for :func:`simulate_serving`.

    The pre-compression implementation, retained verbatim: one Python
    round-trip per decode iteration, ``batch_state_of`` tuple rebuild
    per pricing call, always-full timelines. The equivalence tests (and
    the speed benchmark's baseline leg) hold :func:`simulate_serving`
    bit-for-bit against this.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    cost_model = resolve_step_costs(costs, prompt_time, step_time)
    plens = {r.request_id: r.prompt_len for r in trace.requests}
    sched = Scheduler(max_batch, policy=policy)
    timeline = Timeline()
    requests = trace.requests
    cursor = 0  # arrival cursor: O(1) per drain, no per-call trace copy
    admit_at: dict[int, float] = {}
    now = 0.0
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    total_tokens = 0

    def enqueue_arrived() -> None:
        nonlocal cursor
        while cursor < len(requests) and requests[cursor].arrival <= now:
            r = requests[cursor]
            cursor += 1
            sched.enqueue(SchedRequest(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.gen_tokens,
                arrival=r.arrival,
            ))

    while cursor < len(requests) or sched.num_waiting or sched.num_active:
        # Fast-forward to the next arrival when idle.
        if (not sched.num_active and not sched.num_waiting
                and cursor < len(requests)
                and requests[cursor].arrival > now):
            now = requests[cursor].arrival
        enqueue_arrived()
        # Admit one at a time, paying each prompt pass, so requests
        # arriving *during* a prompt pass can join this round's queue.
        while True:
            admitted = sched.admit(max_admit=1)
            if not admitted:
                break
            s = admitted[0]
            delays[s.request_id] = now - s.arrival
            start = now
            now += cost_model.prompt_cost(
                batch_state_of(sched, plens, exclude=s.request_id), s)
            timeline.record("server", start, now, f"prefill r{s.request_id}")
            timeline.record(f"req-{s.request_id}", s.arrival, start, "queued")
            admit_at[s.request_id] = now
            first[s.request_id] = now  # prompt pass yields token 1
            total_tokens += 1
            if sched.record_token(s.request_id) is not None:
                finish[s.request_id] = now
                timeline.record(f"req-{s.request_id}", start, now, "decode")
            enqueue_arrived()
        if not sched.num_active:
            continue
        # One decode iteration for every live sequence — priced once,
        # whatever the batch size (the batched-forward semantics).
        batch = sched.num_active
        start = now
        now += cost_model.decode_cost(batch_state_of(sched, plens))
        timeline.record("server", start, now, f"decode x{batch}")
        total_tokens += batch
        for rid in sched.active:
            if sched.record_token(rid) is not None:
                finish[rid] = now
                timeline.record(f"req-{rid}", admit_at[rid], now, "decode")
        sched.advance()

    return ServingReport(
        makespan=now,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        total_tokens=total_tokens,
        scheduler=sched,
        timeline=timeline,
    )


def serving_step_times(latency_model, *, mean_prompt: int, mean_gen: int):
    """Deprecated: build (prompt_time, step_time) closures from a dense
    latency model.

    This is a thin shim over :class:`~repro.engine.costs.DenseStepCost`
    in its ``representative_kv`` compat mode (``mean_prompt + mean_gen
    // 2``) and reproduces its numbers bit-for-bit. New code should pass
    ``costs=DenseStepCost(latency_model, ...)`` to
    :func:`simulate_serving` / :func:`~repro.fleet.sim.simulate_fleet`
    directly — the default (no ``representative_kv``) prices each decode
    at the batch's *actual* KV lengths instead of one representative
    point.
    """
    warnings.warn(
        "serving_step_times is deprecated; pass a StepCostModel (e.g. "
        "DenseStepCost) via the costs= parameter instead",
        DeprecationWarning,
        stacklevel=2,
    )
    costs = DenseStepCost(latency_model,
                          representative_kv=mean_prompt + mean_gen // 2)

    def prompt_time(batch: int, prompt_len: int) -> float:
        riders = BatchState.uniform(max(0, batch - 1), 1)
        return costs.prompt_cost(riders, PromptShape(prompt_len))

    def step_time(batch: int) -> float:
        return costs.decode_cost(BatchState.uniform(max(1, batch), 1))

    return prompt_time, step_time
