"""Serving-level simulation: request arrivals, queueing, percentiles.

The paper's latency/throughput numbers are per-batch; production systems
(Sec. I's "online scenarios") face *arrival processes*: requests queue,
join the running batch, and leave on completion. This module synthesizes
request traces and replays them through a continuous-batching server
whose per-iteration costs come from any :class:`~repro.engine.costs
.StepCostModel` — dense, MoE, or ZeRO-offloaded — reporting
time-to-first-token and end-to-end latency percentiles plus sustained
throughput — the numbers an operator actually quotes against an SLA.

Admission and retirement decisions are **not** made here: the replay
drives the same :class:`~repro.engine.scheduler.Scheduler` that the
functional :class:`~repro.engine.generation.GenerationSession` uses, and
merely *prices* its decisions with the cost model — so the analytical
and functional serving paths cannot diverge. The scheduler (with its
event log) and a priced :class:`~repro.simcore.trace.Timeline` come back
on the report for chrome-trace export.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..model.paged_kv import blocks_needed
from ..rng import SeedLike, as_generator
from ..simcore.trace import Timeline
from .costs import BatchState, DenseStepCost, PromptShape, StepCostModel, resolve_step_costs
from .report_stats import ReportStats
from .scheduler import SchedRequest, Scheduler

__all__ = [
    "Request",
    "WorkloadTrace",
    "synthesize_trace",
    "ServingReport",
    "simulate_serving",
    "simulate_serving_reference",
    "serving_step_times",
    "batch_state_of",
    "SUMMARY_DETAIL_THRESHOLD",
]

#: ``detail="auto"`` switches to ``"summary"`` timelines at this trace
#: size — per-request lanes allocate O(requests) span objects that
#: nobody exporting only percentiles ever reads.
SUMMARY_DETAIL_THRESHOLD = 10_000

# Cap on how many decode iterations one vectorized pricing call covers
# while an event with a *time* bound (an arrival, a fault) is pending —
# those can split the run mid-stretch, so pricing far past them is
# wasted work for per-step cost models. Without such an event the next
# retirement bounds the run exactly and no cap is needed. Chunking is
# observably identical (the loop just re-enters mid-stretch).
_RUN_CHUNK_STEPS = 256


@dataclass(frozen=True)
class Request:
    """One request of a trace.

    ``session`` optionally tags the request with a conversation/user id;
    the fleet layer's affinity routing keeps one session's requests on
    one replica (warm prefix/KV locality). ``None`` means unaffiliated.

    The scenario zoo's fields all default to "plain request", so traces
    built before they existed are bit-for-bit unchanged:

    * ``tenant`` — the customer/workload class the request bills to;
      tenant-aware admission policies and per-tenant report views key on
      it (``None`` = untagged).
    * ``turn_index`` — position within its session's conversation
      (0 = opening turn).
    * ``shared_prefix_len`` — leading prompt tokens shared with the
      session's previous turn. The serving layers treat it as an upper
      bound: the realized reuse is capped by what the previous turn's
      cache actually holds, and is zero when prefix sharing is off or
      nothing is parked for the session.
    """

    request_id: int
    arrival: float
    prompt_len: int
    gen_tokens: int
    session: int | None = None
    tenant: str | None = None
    turn_index: int = 0
    shared_prefix_len: int = 0

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.prompt_len < 1 or self.gen_tokens < 1:
            raise ValueError("invalid request parameters")
        if self.turn_index < 0:
            raise ValueError("turn_index must be >= 0")
        if not 0 <= self.shared_prefix_len < self.prompt_len:
            raise ValueError(
                "shared_prefix_len must satisfy 0 <= prefix < prompt_len")
        if self.shared_prefix_len and self.session is None:
            raise ValueError(
                "shared_prefix_len needs a session to share with")

    @property
    def work_tokens(self) -> int:
        """Total token work the request represents (prompt + generation);
        the unit the fleet router balances across replicas."""
        return self.prompt_len + self.gen_tokens


@dataclass(frozen=True)
class WorkloadTrace:
    """A reproducible request trace.

    ``expert_skew`` annotates MoE traces with the Zipf-s gate skew the
    workload was synthesized under (``None`` = unknown/uniform); the
    tuners read it to decide whether skew-aware expert placement is
    worth sweeping.
    """

    requests: tuple[Request, ...]
    expert_skew: float | None = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a trace needs at least one request")
        if self.expert_skew is not None and self.expert_skew < 0:
            raise ValueError("expert_skew must be >= 0 when given")
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            raise ValueError("requests must be sorted by arrival time")
        ids = [r.request_id for r in self.requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique within a trace "
                             "(duplicates would corrupt scheduler state)")

    @property
    def duration(self) -> float:
        """Span of the arrival process."""
        return self.requests[-1].arrival - self.requests[0].arrival

    @property
    def total_gen_tokens(self) -> int:
        """Tokens the trace asks for."""
        return sum(r.gen_tokens for r in self.requests)


def synthesize_trace(
    *,
    num_requests: int,
    arrival_rate: float,
    mean_prompt: int = 128,
    mean_gen: int = 32,
    num_sessions: int | None = None,
    session_mode: str = "uniform",
    expert_skew: float | None = None,
    arrival_shape: str = "poisson",
    diurnal_amplitude: float = 0.8,
    diurnal_period: float | None = None,
    burst_factor: float = 8.0,
    num_bursts: int = 2,
    seed: SeedLike = 0,
) -> WorkloadTrace:
    """Synthesize a request trace with Poisson-ish lengths and a chosen
    arrival process.

    This is now a thin compat wrapper over :mod:`repro.scenarios`: the
    arrival machinery lives in
    :func:`repro.scenarios.arrivals.draw_arrivals` (``arrival_shape`` /
    ``diurnal_*`` / ``burst_*`` knobs pass through unchanged — see its
    docstring for the shapes), and richer workloads (multi-turn chat,
    agentic loops, heavy tails, tenant mixes) come from the scenario
    generators. Historical arguments keep producing bit-for-bit
    identical traces.

    ``num_sessions`` tags requests with session ids for the fleet
    layer's affinity routing; ``session_mode`` picks how:

    * ``"uniform"`` (default, historical) — each request's session id is
      drawn i.i.d. uniform from ``range(num_sessions)``. A "session" is
      then just a routing tag: its requests have independent arrivals,
      interleave arbitrarily, and carry no turn ordering or shared
      prefix. Bit-for-bit the old behavior.
    * ``"chat"`` — delegate to
      :func:`repro.scenarios.chat_scenario`'s session machinery:
      ``num_sessions`` conversations whose turns arrive *causally*
      (each turn follows the previous turn's estimated completion) with
      ``turn_index``/``shared_prefix_len`` set for prefix reuse. Draws
      differ from uniform mode; ``arrival_rate`` becomes the session
      arrival rate and ``arrival_shape`` must be ``"poisson"``.

    ``expert_skew`` stamps the trace with a Zipf-s gate skew (see
    :func:`repro.moe_placement.zipf_expert_probs`) so MoE benchmarks can
    regenerate the matching gate stream from the same seed. ``seed``
    takes an int or a live :class:`numpy.random.Generator` to thread one
    stream through a composite workflow (see :mod:`repro.rng`).
    """
    # Function-local import: repro.scenarios builds WorkloadTrace objects
    # from this module, so the package dependency points scenarios ->
    # engine; the compat wrapper resolves its helpers lazily.
    from ..scenarios import chat_scenario
    from ..scenarios.arrivals import draw_arrivals

    if num_requests < 1 or arrival_rate <= 0:
        raise ValueError("num_requests >= 1 and arrival_rate > 0 required")
    if mean_prompt < 1 or mean_gen < 1:
        raise ValueError("mean lengths must be >= 1")
    if num_sessions is not None and num_sessions < 1:
        raise ValueError("num_sessions must be >= 1 when given")
    if session_mode not in ("uniform", "chat"):
        raise ValueError(
            f"unknown session_mode {session_mode!r}; "
            "choose 'uniform' or 'chat'")
    if expert_skew is not None and expert_skew < 0:
        raise ValueError("expert_skew must be >= 0 when given")
    if session_mode == "chat":
        if num_sessions is None:
            raise ValueError("session_mode='chat' requires num_sessions=")
        if arrival_shape != "poisson":
            raise ValueError(
                "session_mode='chat' supports only arrival_shape='poisson' "
                "(sessions arrive Poisson; turns follow causally)")
        return chat_scenario(
            num_sessions=num_sessions,
            session_rate=arrival_rate,
            mean_prompt=mean_prompt,
            mean_gen=mean_gen,
            num_requests=num_requests,
            expert_skew=expert_skew,
            seed=seed,
        )
    rng = as_generator(seed)
    arrivals = draw_arrivals(
        rng, num_requests, arrival_rate,
        arrival_shape=arrival_shape,
        diurnal_amplitude=diurnal_amplitude,
        diurnal_period=diurnal_period,
        burst_factor=burst_factor,
        num_bursts=num_bursts,
    )
    prompts = np.maximum(1, rng.poisson(mean_prompt, size=num_requests))
    gens = np.maximum(1, rng.poisson(mean_gen, size=num_requests))
    sessions = (None if num_sessions is None
                else rng.integers(0, num_sessions, size=num_requests))
    return WorkloadTrace(
        tuple(
            Request(i, float(arrivals[i]), int(prompts[i]), int(gens[i]),
                    session=None if sessions is None else int(sessions[i]))
            for i in range(num_requests)
        ),
        expert_skew=expert_skew,
    )


@dataclass(frozen=True)
class ServingReport(ReportStats):
    """Outcome of replaying one trace.

    Percentile/throughput views (``latency``, ``ttft``,
    ``latency_percentile``, ``ttft_percentile``, ``tokens_per_second``,
    and the per-tenant variants) come from
    :class:`~repro.engine.report_stats.ReportStats`, shared with the
    fleet layer's report.

    The KV counters mirror the functional engine's paged allocator
    (block-granular, all layers): ``kv_blocks_allocated`` are fresh
    allocations over the whole replay, ``kv_blocks_saved`` the
    allocations prefix sharing avoided (blocks inherited by fork),
    ``peak_kv_blocks`` the high-water pool occupancy including parked
    session caches. ``prefix_hits``/``prefix_hit_tokens`` count the
    admissions that reused a parked prefix and the tokens they skipped
    re-prefilling.
    """

    makespan: float
    finish_times: dict[int, float]
    first_token_times: dict[int, float]
    queue_delays: dict[int, float]
    total_tokens: int
    prefix_hits: int = 0
    prefix_hit_tokens: int = 0
    kv_blocks_allocated: int = 0
    kv_blocks_saved: int = 0
    peak_kv_blocks: int = 0
    scheduler: Scheduler | None = field(default=None, compare=False)
    timeline: Timeline | None = field(default=None, compare=False)


class _KvTracker:
    """Analytical KV-block accounting mirroring the functional paged
    allocator, including copy-on-write prefix sharing.

    The functional engine's cache for a request retired after ``G``
    tokens holds ``prompt + G - 1`` positions (the final emitted token
    is never appended), occupying ``num_layers * ceil(positions /
    block_size)`` pool blocks. With ``prefix_sharing`` on, a
    session-tagged retiree's cache is *parked*; the session's next turn
    forks it up to ``eff = min(shared_prefix_len, parked positions)``
    tokens — inheriting the covering blocks by aliasing instead of
    allocating them — and the parked parent is freed at the fork (its
    remaining blocks return to the pool, so no copy-on-write fires in
    this flow). The tracker replays exactly that arithmetic, so its
    counters equal the functional allocator's measurements.

    Stretch discipline: callers grow every live request (retirees
    included — they participate in all of a stretch's steps) *before*
    retiring, matching the functional order of operations within a
    decode step; block usage is monotone inside a stretch, so the peak
    is exact.
    """

    def __init__(
        self,
        requests,
        *,
        block_size: int = 16,
        num_layers: int = 1,
        prefix_sharing: bool = True,
    ) -> None:
        if block_size < 1 or num_layers < 1:
            raise ValueError("block_size and num_layers must be >= 1")
        self.block_size = block_size
        self.num_layers = num_layers
        self.prefix_sharing = prefix_sharing
        self._by_id = {r.request_id: r for r in requests}
        # session -> (parked cache positions, blocks it occupies)
        self._parked: dict[int, tuple[int, int]] = {}
        self._pos: dict[int, int] = {}  # live rid -> cached positions
        self._used = 0
        self.peak_blocks = 0
        self.allocated = 0
        self.hits = 0
        self.hit_tokens = 0
        self.saved_blocks = 0

    def _blocks(self, positions: int) -> int:
        return self.num_layers * (-(-positions // self.block_size))

    def admit(self, rid: int) -> int:
        """Account one admission; returns the effective shared prefix
        (0 = full prefill) for prefix-aware prompt pricing."""
        r = self._by_id[rid]
        eff = 0
        if (self.prefix_sharing and r.shared_prefix_len
                and r.session in self._parked):
            ctx, parked_blocks = self._parked.pop(r.session)
            eff = min(r.shared_prefix_len, ctx)
            # Fork: the child aliases the prefix blocks; the parked
            # parent is freed, returning its suffix blocks to the pool.
            self._used -= parked_blocks - self._blocks(eff)
            self.hits += 1
            self.hit_tokens += eff
            self.saved_blocks += self._blocks(eff)
        fresh = blocks_needed(r.prompt_len, block_size=self.block_size,
                              num_layers=self.num_layers,
                              shared_prefix_len=eff)
        self._used += fresh
        self.allocated += fresh
        if self._used > self.peak_blocks:
            self.peak_blocks = self._used
        self._pos[rid] = r.prompt_len
        return eff

    def grow_all(self, steps: int) -> None:
        """Every live request appends ``steps`` positions (one per
        decode iteration of a stretch)."""
        for rid, pos in self._pos.items():
            delta = self._blocks(pos + steps) - self._blocks(pos)
            self._used += delta
            self.allocated += delta
            self._pos[rid] = pos + steps
        if self._used > self.peak_blocks:
            self.peak_blocks = self._used

    def retire(self, rid: int) -> None:
        """Release (or park) a finished request's cache."""
        pos = self._pos.pop(rid)
        r = self._by_id[rid]
        blocks = self._blocks(pos)
        if self.prefix_sharing and r.session is not None:
            prev = self._parked.get(r.session)
            if prev is not None:  # newer turn supersedes the parked one
                self._used -= prev[1]
            self._parked[r.session] = (pos, blocks)
        else:
            self._used -= blocks

    def reset_live(self) -> None:
        """Drop all live (non-parked) accounting — a replica crash wipes
        in-flight caches; parked state dies with them too."""
        for pos in self._pos.values():
            self._used -= self._blocks(pos)
        self._pos.clear()
        for _, blocks in self._parked.values():
            self._used -= blocks
        self._parked.clear()


def batch_state_of(
    sched: Scheduler,
    prompt_lens: dict[int, int],
    *,
    exclude: int | None = None,
) -> BatchState:
    """The live batch's :class:`BatchState` as seen by the scheduler.

    Each active sequence's KV length is its prompt plus the tokens
    recorded so far; ``exclude`` drops one request id (used to price a
    prompt pass against the *riders*, not the newcomer itself).
    """
    return BatchState(tuple(
        prompt_lens[rid] + sched.generated(rid)
        for rid in sched.active if rid != exclude
    ))


def _resolve_detail(detail: str, num_requests: int) -> bool:
    """True for full per-step/per-request timelines, False for summary."""
    if detail not in ("auto", "full", "summary"):
        raise ValueError(
            f"unknown detail {detail!r}; choose 'auto', 'full' or 'summary'")
    if detail == "auto":
        return num_requests < SUMMARY_DETAIL_THRESHOLD
    return detail == "full"


def simulate_serving(
    trace: WorkloadTrace,
    *,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
    detail: str = "auto",
    kv_block_size: int = 16,
    kv_num_layers: int = 1,
    prefix_sharing: bool = True,
) -> ServingReport:
    """Replay ``trace`` through a continuous-batching server.

    Lifecycle decisions come from the shared
    :class:`~repro.engine.scheduler.Scheduler` (the same class the
    functional engine runs); this function only maps arrivals into the
    queue and prices the scheduler's decisions with ``costs`` (any
    :class:`~repro.engine.costs.StepCostModel`:
    :class:`~repro.engine.costs.DenseStepCost`,
    :class:`~repro.engine.costs.MoEStepCost`,
    :class:`~repro.engine.costs.ZeroStepCost`, ...). The legacy
    ``prompt_time(batch, prompt_len)`` / ``step_time(batch)`` closure
    pair is still accepted in place of ``costs``.

    ``prefix_sharing`` (with ``kv_block_size``/``kv_num_layers`` sizing
    the mirrored paged pool) enables session prefix reuse: a
    session-tagged request whose ``shared_prefix_len`` overlaps its
    session's parked previous turn is priced as *incremental* prefill
    (only the unshared suffix pays prompt FLOPs) and inherits the
    prefix's KV blocks instead of re-allocating them. The report's KV
    counters track the mirrored pool either way; traces without
    ``shared_prefix_len`` tags price bit-for-bit as before.

    The replay is *event-compressed*: between scheduler-relevant events
    (the next arrival, the next length retirement) the batch composition
    is frozen, so whole stretches of decode iterations are priced with
    one :meth:`~repro.engine.costs.StepCostModel.decode_run_cost` call
    and committed with one bulk
    :meth:`~repro.engine.scheduler.Scheduler.record_tokens`. Reports are
    bit-for-bit identical to the retained per-step oracle
    (:func:`simulate_serving_reference`) — same makespan, same
    per-request times, same scheduler event log.

    ``detail`` controls timeline fidelity: ``"full"`` records per-step
    server spans and per-request queued/decode lanes; ``"summary"``
    records one aggregated server span per compressed stretch and skips
    the per-request lanes (O(requests) span objects saved); ``"auto"``
    (default) picks summary at :data:`SUMMARY_DETAIL_THRESHOLD` requests
    and full below it. The *report* numbers are identical at every
    level.

    The returned report carries the scheduler (event log, orderings) and
    a priced :class:`Timeline` — exportable with
    ``timeline.to_chrome_trace()``.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    full = _resolve_detail(detail, len(trace.requests))
    cost_model = resolve_step_costs(costs, prompt_time, step_time)
    sched = Scheduler(max_batch, policy=policy)
    timeline = Timeline()
    requests = trace.requests
    kv = _KvTracker(requests, block_size=kv_block_size,
                    num_layers=kv_num_layers, prefix_sharing=prefix_sharing)
    cursor = 0  # arrival cursor: O(1) per drain, no per-call trace copy
    admit_at: dict[int, float] = {}
    now = 0.0
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    total_tokens = 0
    # Incrementally maintained batch view: rid -> prompt + generated, in
    # admission order (mirrors ``sched.active``), replacing per-step
    # ``batch_state_of`` rebuilds.
    live_kv: dict[int, int] = {}

    def enqueue_arrived() -> None:
        nonlocal cursor
        while cursor < len(requests) and requests[cursor].arrival <= now:
            r = requests[cursor]
            cursor += 1
            sched.enqueue(SchedRequest(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.gen_tokens,
                arrival=r.arrival,
                tenant=r.tenant,
            ))

    while cursor < len(requests) or sched.num_waiting or sched.num_active:
        # Fast-forward to the next arrival when idle.
        if (not sched.num_active and not sched.num_waiting
                and cursor < len(requests)
                and requests[cursor].arrival > now):
            now = requests[cursor].arrival
        enqueue_arrived()
        # Admit one at a time, paying each prompt pass, so requests
        # arriving *during* a prompt pass can join this round's queue.
        while True:
            admitted = sched.admit(max_admit=1)
            if not admitted:
                break
            s = admitted[0]
            delays[s.request_id] = now - s.arrival
            start = now
            eff = kv.admit(s.request_id)
            # ``live_kv`` excludes the newcomer by construction: it is
            # inserted only after its prompt pass is priced. A prefix
            # hit prices the unshared suffix only; ``eff == 0`` passes
            # the scheduler's request through untouched (bit-for-bit the
            # pre-sharing numbers).
            shape = (PromptShape(s.prompt_len, shared_prefix_len=eff)
                     if eff else s)
            now += cost_model.prompt_cost(
                BatchState(tuple(live_kv.values())), shape)
            label = (f"prefill r{s.request_id} (+{eff} cached)" if eff
                     else f"prefill r{s.request_id}")
            timeline.record("server", start, now, label)
            if full:
                timeline.record(f"req-{s.request_id}", s.arrival, start,
                                "queued")
            admit_at[s.request_id] = now
            first[s.request_id] = now  # prompt pass yields token 1
            total_tokens += 1
            if sched.record_token(s.request_id) is not None:
                finish[s.request_id] = now
                kv.retire(s.request_id)
                if full:
                    timeline.record(f"req-{s.request_id}", start, now,
                                    "decode")
            else:
                live_kv[s.request_id] = s.prompt_len + 1
            enqueue_arrived()
        if not sched.num_active:
            continue
        # Event-compressed decode: until the next arrival or length
        # retirement the batch is frozen, so price the whole stretch in
        # one vectorized call and commit it in one bulk advance. The
        # cumsum *includes* ``now`` so the float additions associate
        # exactly as the per-step ``now += cost`` loop.
        batch = sched.num_active
        horizon = sched.decode_horizon()
        if cursor < len(requests):
            horizon = min(horizon, _RUN_CHUNK_STEPS)
        run = cost_model.decode_run_cost(
            BatchState(tuple(live_kv.values())), horizon)
        buf = np.empty(horizon + 1)
        buf[0] = now
        buf[1:] = run
        ends = np.cumsum(buf, out=buf)[1:]
        n = horizon
        if cursor < len(requests):
            # Steps are pure only while every intermediate loop-top stays
            # strictly before the next arrival's enqueue point.
            k = int(np.searchsorted(ends, requests[cursor].arrival,
                                    side="left"))
            n = min(n, k + 1)
        ends_list = ends[:n].tolist()  # exact float64 -> float
        start = now
        now = ends_list[-1]
        retired = sched.record_tokens(n)
        total_tokens += n * batch
        if full:
            s_prev = start
            for e in ends_list:
                timeline.record("server", s_prev, e, f"decode x{batch}")
                s_prev = e
        else:
            timeline.record("server", start, now,
                            f"decode x{batch} ({n} steps)")
        # Caches grow before retirement (a retiree participates in every
        # step of the stretch — it retires *at* the last one).
        kv.grow_all(n)
        for rid in retired:
            finish[rid] = now
            kv.retire(rid)
            if full:
                timeline.record(f"req-{rid}", admit_at[rid], now, "decode")
            del live_kv[rid]
        for rid in live_kv:
            live_kv[rid] += n

    return ServingReport(
        makespan=now,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        total_tokens=total_tokens,
        prefix_hits=kv.hits,
        prefix_hit_tokens=kv.hit_tokens,
        kv_blocks_allocated=kv.allocated,
        kv_blocks_saved=kv.saved_blocks,
        peak_kv_blocks=kv.peak_blocks,
        scheduler=sched,
        timeline=timeline,
    )


def simulate_serving_reference(
    trace: WorkloadTrace,
    *,
    costs: StepCostModel | None = None,
    prompt_time: Callable[[int, int], float] | None = None,
    step_time: Callable[[int], float] | None = None,
    max_batch: int,
    policy: str = "fcfs",
    kv_block_size: int = 16,
    kv_num_layers: int = 1,
    prefix_sharing: bool = True,
) -> ServingReport:
    """Per-step reference oracle for :func:`simulate_serving`.

    The pre-compression implementation, retained verbatim: one Python
    round-trip per decode iteration, ``batch_state_of`` tuple rebuild
    per pricing call, always-full timelines. The equivalence tests (and
    the speed benchmark's baseline leg) hold :func:`simulate_serving`
    bit-for-bit against this — including the prefix-sharing KV counters.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    cost_model = resolve_step_costs(costs, prompt_time, step_time)
    plens = {r.request_id: r.prompt_len for r in trace.requests}
    sched = Scheduler(max_batch, policy=policy)
    timeline = Timeline()
    requests = trace.requests
    kv = _KvTracker(requests, block_size=kv_block_size,
                    num_layers=kv_num_layers, prefix_sharing=prefix_sharing)
    cursor = 0  # arrival cursor: O(1) per drain, no per-call trace copy
    admit_at: dict[int, float] = {}
    now = 0.0
    finish: dict[int, float] = {}
    first: dict[int, float] = {}
    delays: dict[int, float] = {}
    total_tokens = 0

    def enqueue_arrived() -> None:
        nonlocal cursor
        while cursor < len(requests) and requests[cursor].arrival <= now:
            r = requests[cursor]
            cursor += 1
            sched.enqueue(SchedRequest(
                request_id=r.request_id,
                prompt_len=r.prompt_len,
                max_new_tokens=r.gen_tokens,
                arrival=r.arrival,
                tenant=r.tenant,
            ))

    while cursor < len(requests) or sched.num_waiting or sched.num_active:
        # Fast-forward to the next arrival when idle.
        if (not sched.num_active and not sched.num_waiting
                and cursor < len(requests)
                and requests[cursor].arrival > now):
            now = requests[cursor].arrival
        enqueue_arrived()
        # Admit one at a time, paying each prompt pass, so requests
        # arriving *during* a prompt pass can join this round's queue.
        while True:
            admitted = sched.admit(max_admit=1)
            if not admitted:
                break
            s = admitted[0]
            delays[s.request_id] = now - s.arrival
            start = now
            eff = kv.admit(s.request_id)
            shape = (PromptShape(s.prompt_len, shared_prefix_len=eff)
                     if eff else s)
            now += cost_model.prompt_cost(
                batch_state_of(sched, plens, exclude=s.request_id), shape)
            label = (f"prefill r{s.request_id} (+{eff} cached)" if eff
                     else f"prefill r{s.request_id}")
            timeline.record("server", start, now, label)
            timeline.record(f"req-{s.request_id}", s.arrival, start, "queued")
            admit_at[s.request_id] = now
            first[s.request_id] = now  # prompt pass yields token 1
            total_tokens += 1
            if sched.record_token(s.request_id) is not None:
                finish[s.request_id] = now
                kv.retire(s.request_id)
                timeline.record(f"req-{s.request_id}", start, now, "decode")
            enqueue_arrived()
        if not sched.num_active:
            continue
        # One decode iteration for every live sequence — priced once,
        # whatever the batch size (the batched-forward semantics).
        batch = sched.num_active
        start = now
        now += cost_model.decode_cost(batch_state_of(sched, plens))
        timeline.record("server", start, now, f"decode x{batch}")
        total_tokens += batch
        kv.grow_all(1)  # every live cache appends this step's token
        for rid in sched.active:
            if sched.record_token(rid) is not None:
                finish[rid] = now
                kv.retire(rid)
                timeline.record(f"req-{rid}", admit_at[rid], now, "decode")
        sched.advance()

    return ServingReport(
        makespan=now,
        finish_times=finish,
        first_token_times=first,
        queue_delays=delays,
        total_tokens=total_tokens,
        prefix_hits=kv.hits,
        prefix_hit_tokens=kv.hit_tokens,
        kv_blocks_allocated=kv.allocated,
        kv_blocks_saved=kv.saved_blocks,
        peak_kv_blocks=kv.peak_blocks,
        scheduler=sched,
        timeline=timeline,
    )


def serving_step_times(latency_model, *, mean_prompt: int, mean_gen: int):
    """Deprecated: build (prompt_time, step_time) closures from a dense
    latency model.

    This is a thin shim over :class:`~repro.engine.costs.DenseStepCost`
    in its ``representative_kv`` compat mode (``mean_prompt + mean_gen
    // 2``) and reproduces its numbers bit-for-bit. New code should pass
    ``costs=DenseStepCost(latency_model, ...)`` to
    :func:`simulate_serving` / :func:`~repro.fleet.sim.simulate_fleet`
    directly — the default (no ``representative_kv``) prices each decode
    at the batch's *actual* KV lengths instead of one representative
    point.
    """
    warnings.warn(
        "serving_step_times is deprecated; pass a StepCostModel (e.g. "
        "DenseStepCost) via the costs= parameter instead",
        DeprecationWarning,
        stacklevel=2,
    )
    costs = DenseStepCost(latency_model,
                          representative_kv=mean_prompt + mean_gen // 2)

    def prompt_time(batch: int, prompt_len: int) -> float:
        riders = BatchState.uniform(max(0, batch - 1), 1)
        return costs.prompt_cost(riders, PromptShape(prompt_len))

    def step_time(batch: int) -> float:
        return costs.decode_cost(BatchState.uniform(max(1, batch), 1))

    return prompt_time, step_time
