"""Inference engines: dense and MoE latency/throughput models, activation
offloading, and the user-facing facades."""

from .costs import (
    BatchState,
    ClosureStepCost,
    DenseStepCost,
    MoEStepCost,
    PromptShape,
    StepCostModel,
    ZeroStepCost,
    resolve_step_costs,
)
from .generation import GenerationRequest, GenerationSession
from .inference import InferenceEngine, MoEInferenceEngine
from .latency import DenseLatencyModel, LatencyReport, Workload
from .moe import MoELatencyModel, MoEStepBreakdown
from .scheduler import ADMISSION_POLICIES, SchedRequest, Scheduler, SchedulerEvent
from .serving_sim import (
    SUMMARY_DETAIL_THRESHOLD,
    Request,
    ServingReport,
    WorkloadTrace,
    batch_state_of,
    serving_step_times,
    simulate_serving,
    simulate_serving_reference,
    synthesize_trace,
)
from .offload import (
    OffloadReport,
    kv_offload_overflow,
    kv_offload_stall_per_step,
    max_batch_size,
    moe_max_batch_size,
    simulate_offload,
)
from .throughput import ThroughputPoint, best_throughput, candidate_batches
from .trace_run import DeploymentTrace, trace_generation
from .tuner import (
    ServingTuningResult,
    TuningResult,
    tune_dense_deployment,
    tune_serving_deployment,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BatchState",
    "ClosureStepCost",
    "DenseStepCost",
    "MoEStepCost",
    "PromptShape",
    "SchedRequest",
    "Scheduler",
    "SchedulerEvent",
    "ServingTuningResult",
    "StepCostModel",
    "ZeroStepCost",
    "batch_state_of",
    "moe_max_batch_size",
    "resolve_step_costs",
    "tune_serving_deployment",
    "DenseLatencyModel",
    "GenerationRequest",
    "GenerationSession",
    "InferenceEngine",
    "LatencyReport",
    "MoEInferenceEngine",
    "MoELatencyModel",
    "MoEStepBreakdown",
    "OffloadReport",
    "Request",
    "ServingReport",
    "WorkloadTrace",
    "SUMMARY_DETAIL_THRESHOLD",
    "serving_step_times",
    "simulate_serving",
    "simulate_serving_reference",
    "synthesize_trace",
    "ThroughputPoint",
    "Workload",
    "DeploymentTrace",
    "best_throughput",
    "kv_offload_overflow",
    "kv_offload_stall_per_step",
    "candidate_batches",
    "max_batch_size",
    "simulate_offload",
    "TuningResult",
    "trace_generation",
    "tune_dense_deployment",
]
