"""Shared request scheduler: one lifecycle authority for every backend.

Sec. IV-C1 motivates the dynamic token queue because autoregressive
sequences terminate independently; Sec. IV-B makes KV capacity the
limiter on how many may run at once. Both concerns are *scheduling*
decisions — who waits, who gets a slot, who retires — and they must not
be re-implemented per execution backend, or the functional engine and
the analytical simulator drift apart.

:class:`Scheduler` is that single authority. It is step-driven and knows
nothing about tensors or wall-clock pricing: backends enqueue requests
as they arrive, call :meth:`admit` to fill free slots under a pluggable
policy, report every generated token through :meth:`record_token` (which
owns EOS/length retirement), and call :meth:`advance` once per decode
iteration. Every decision lands in an event log; :meth:`to_timeline`
renders it as a :class:`~repro.simcore.trace.Timeline` for
``to_chrome_trace`` export.

Both :class:`~repro.engine.generation.GenerationSession` (real tensors)
and :func:`~repro.engine.serving_sim.simulate_serving` (priced time)
consume this class, so on a shared trace they make identical admission
and retirement decisions by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from ..simcore.trace import Timeline

__all__ = [
    "SchedRequest",
    "SchedulerEvent",
    "Scheduler",
    "ADMISSION_POLICIES",
    "TenantFairShare",
    "TenantPriority",
]


@dataclass(frozen=True)
class SchedRequest:
    """Scheduling-relevant metadata of one request (no tensors).

    ``tenant`` tags the request with its traffic class for the
    tenant-aware admission policies (:class:`TenantFairShare`,
    :class:`TenantPriority`); ``None`` means untagged — tenant-blind
    policies never look at it.
    """

    request_id: int
    prompt_len: int
    max_new_tokens: int
    arrival: float = 0.0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


@dataclass(frozen=True)
class SchedulerEvent:
    """One lifecycle decision: ``enqueue``, ``admit``, or ``retire``."""

    step: int
    kind: str
    request_id: int
    reason: str = ""


def _fcfs(queue: Sequence[SchedRequest]) -> SchedRequest:
    """First come, first served: strict arrival/enqueue order."""
    return queue[0]


def _shortest_prompt(queue: Sequence[SchedRequest]) -> SchedRequest:
    """Shortest prompt first (ties broken by enqueue order — ``min`` is
    stable). Prioritizes cheap admissions when slots are scarce."""
    return min(queue, key=lambda r: r.prompt_len)


class TenantFairShare:
    """Weighted fair-share admission across tenants.

    Picks the queued request whose tenant currently holds the fewest
    slots *per unit weight* (ties broken by queue order), so a tenant
    flooding the queue cannot starve a light one: each admission goes to
    the most under-served tenant with work waiting. ``slot_caps`` bounds
    a tenant's concurrent slots; capped tenants are *skipped* (their
    requests stay queued, in order) and the policy returns ``None`` —
    stopping admission — only when every queued request is capped out.

    Stateless: the pick is a pure function of (queue, active), so the
    analytical and functional backends sharing one instance make
    identical decisions. Untagged requests (``tenant=None``) form their
    own implicit tenant with ``default_weight``.
    """

    tenant_aware = True

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        *,
        slot_caps: dict[str, int] | None = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        for name, w in (weights or {}).items():
            if w <= 0:
                raise ValueError(f"weight of tenant {name!r} must be > 0")
        for name, cap in (slot_caps or {}).items():
            if cap < 1:
                raise ValueError(f"slot cap of tenant {name!r} must be >= 1")
        self.weights = dict(weights or {})
        self.slot_caps = dict(slot_caps or {})
        self.default_weight = default_weight

    def __call__(
        self,
        queue: Sequence[SchedRequest],
        active: Sequence[SchedRequest],
    ) -> SchedRequest | None:
        held: dict[str | None, int] = {}
        for r in active:
            held[r.tenant] = held.get(r.tenant, 0) + 1
        best: SchedRequest | None = None
        best_key: tuple[float, int] | None = None
        for i, r in enumerate(queue):
            cap = self.slot_caps.get(r.tenant)
            if cap is not None and held.get(r.tenant, 0) >= cap:
                continue
            weight = self.weights.get(r.tenant, self.default_weight)
            key = (held.get(r.tenant, 0) / weight, i)
            if best_key is None or key < best_key:
                best, best_key = r, key
        return best


class TenantPriority:
    """Strict-priority admission across tenants.

    Always admits from the highest-priority tenant with work queued
    (larger ``priorities`` value = more important; unlisted tenants get
    ``default_priority``); within a tenant, queue order. ``slot_caps``
    has :class:`TenantFairShare` semantics — a capped tenant's requests
    wait without blocking lower-priority traffic, and ``None`` (stop
    admission) comes back only when nothing admissible remains.
    """

    tenant_aware = True

    def __init__(
        self,
        priorities: dict[str, int] | None = None,
        *,
        slot_caps: dict[str, int] | None = None,
        default_priority: int = 0,
    ) -> None:
        for name, cap in (slot_caps or {}).items():
            if cap < 1:
                raise ValueError(f"slot cap of tenant {name!r} must be >= 1")
        self.priorities = dict(priorities or {})
        self.slot_caps = dict(slot_caps or {})
        self.default_priority = default_priority

    def __call__(
        self,
        queue: Sequence[SchedRequest],
        active: Sequence[SchedRequest],
    ) -> SchedRequest | None:
        held: dict[str | None, int] = {}
        for r in active:
            held[r.tenant] = held.get(r.tenant, 0) + 1
        best: SchedRequest | None = None
        best_key: tuple[int, int] | None = None
        for i, r in enumerate(queue):
            cap = self.slot_caps.get(r.tenant)
            if cap is not None and held.get(r.tenant, 0) >= cap:
                continue
            prio = self.priorities.get(r.tenant, self.default_priority)
            key = (-prio, i)
            if best_key is None or key < best_key:
                best, best_key = r, key
        return best


#: Named admission policies. Plain entries are callables over the
#: waiting queue; policies with a truthy ``tenant_aware`` attribute are
#: called as ``policy(queue, active)`` and may return ``None`` to stop
#: admission (everything admissible is capped out). ``"tenant_fair"``
#: is an unweighted, uncapped :class:`TenantFairShare`; configured
#: instances (weights, caps, priorities) are passed as the policy
#: callable directly.
ADMISSION_POLICIES: dict[str, Callable[..., SchedRequest | None]] = {
    "fcfs": _fcfs,
    "shortest_prompt": _shortest_prompt,
    "tenant_fair": TenantFairShare(),
}


class Scheduler:
    """Request lifecycle: queue -> bounded slots -> retirement.

    ``policy`` names an entry of :data:`ADMISSION_POLICIES` or is a
    callable picking the next request to admit from the waiting queue.
    ``eos_token`` makes :meth:`record_token` retire a request the moment
    it emits that token (reason ``"eos"``); length retirement at
    ``max_new_tokens`` always applies.
    """

    def __init__(
        self,
        max_slots: int,
        *,
        policy: str | Callable[[Sequence[SchedRequest]], SchedRequest] = "fcfs",
        eos_token: int | None = None,
    ) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if callable(policy):
            self.policy_name = getattr(policy, "__name__", "custom")
            self._pick = policy
        else:
            if policy not in ADMISSION_POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; "
                    f"choose from {sorted(ADMISSION_POLICIES)} or pass a callable"
                )
            self.policy_name = policy
            self._pick = ADMISSION_POLICIES[policy]
        # Tenant-aware policies see the active set too and may decline
        # (return None) when every queued request is capped out.
        self._tenant_aware = bool(getattr(self._pick, "tenant_aware", False))
        self.max_slots = max_slots
        self.eos_token = eos_token
        # deque is a registered Sequence, so policy callables index and
        # scan it exactly as they did the old list; FCFS admissions pop
        # the head in O(1) instead of list.remove's O(n) shift.
        self._queue: deque[SchedRequest] = deque()
        self._active: dict[int, SchedRequest] = {}  # admission order
        self._generated: dict[int, int] = {}
        self._step = 0
        self.events: list[SchedulerEvent] = []
        self._enqueue_step: dict[int, int] = {}
        self._admit_step: dict[int, int] = {}
        self._retire_step: dict[int, int] = {}
        self._known: set[int] = set()
        self._admission_order: list[int] = []
        self._retirement_order: list[int] = []

    # -- state views ---------------------------------------------------------

    @property
    def step(self) -> int:
        """Current decode iteration index."""
        return self._step

    @property
    def active(self) -> list[int]:
        """Request ids holding slots, in admission order."""
        return list(self._active)

    @property
    def num_active(self) -> int:
        """Slots currently occupied."""
        return len(self._active)

    @property
    def num_waiting(self) -> int:
        """Requests queued for a slot."""
        return len(self._queue)

    @property
    def waiting(self) -> list[int]:
        """Request ids still queued, in queue (enqueue) order.

        The fleet layer drains this on a replica crash to requeue the
        not-yet-admitted requests elsewhere."""
        return [r.request_id for r in self._queue]

    @property
    def free_slots(self) -> int:
        """Slots available for admission."""
        return self.max_slots - len(self._active)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a slot (alias of :attr:`num_waiting`
        under the autoscaler's signal vocabulary)."""
        return len(self._queue)

    @property
    def waiting_tokens(self) -> int:
        """Token work (prompt + requested generation) still queued.

        The autoscaler's outstanding-work signal: unlike
        :attr:`queue_depth` it weighs a queued 2k-token prompt heavier
        than a queued 8-token probe."""
        return sum(r.prompt_len + r.max_new_tokens for r in self._queue)

    def oldest_waiting_arrival(self) -> float | None:
        """Arrival time of the head-of-queue request, or ``None`` when
        the queue is empty. ``now - oldest_waiting_arrival()`` bounds the
        queueing delay the next admission will record."""
        return self._queue[0].arrival if self._queue else None

    def generated(self, request_id: int) -> int:
        """Tokens recorded for a request so far."""
        return self._generated.get(request_id, 0)

    @property
    def enqueue_steps(self) -> dict[int, int]:
        """Step at which each request was enqueued (a copy).

        This is the replay interface: a driver that enqueues requests
        into a fresh scheduler-backed backend at these steps reproduces
        this scheduler's queue evolution exactly (see the fleet layer's
        functional mode)."""
        return dict(self._enqueue_step)

    @property
    def admission_order(self) -> list[int]:
        """Request ids in the order they were admitted (a copy)."""
        return list(self._admission_order)

    @property
    def retirement_order(self) -> list[int]:
        """Request ids in the order they retired (a copy)."""
        return list(self._retirement_order)

    # -- lifecycle -----------------------------------------------------------

    def _log(self, kind: str, request_id: int, reason: str = "") -> None:
        self.events.append(SchedulerEvent(self._step, kind, request_id, reason))
        if kind == "admit":
            self._admission_order.append(request_id)
        elif kind == "retire":
            self._retirement_order.append(request_id)

    def enqueue(self, req: SchedRequest) -> None:
        """Add a request to the waiting queue."""
        if req.request_id in self._known:
            raise ValueError(f"request {req.request_id} already scheduled")
        self._known.add(req.request_id)
        self._queue.append(req)
        self._enqueue_step[req.request_id] = self._step
        self._log("enqueue", req.request_id)

    def admit(
        self,
        *,
        can_admit: Callable[[SchedRequest], bool] | None = None,
        max_admit: int | None = None,
    ) -> list[SchedRequest]:
        """Move queued requests into free slots under the policy.

        ``can_admit`` lets the backend veto the policy's candidate (e.g.
        not enough KV blocks); admission then *stops* rather than skipping
        ahead, so capacity pressure cannot starve or reorder requests.
        Returns the admitted requests in admission order.
        """
        admitted: list[SchedRequest] = []
        while self._queue and self.free_slots > 0:
            if max_admit is not None and len(admitted) >= max_admit:
                break
            if self._tenant_aware:
                cand = self._pick(self._queue, tuple(self._active.values()))
                if cand is None:  # everything admissible is capped out
                    break
            else:
                cand = self._pick(self._queue)
            if can_admit is not None and not can_admit(cand):
                break
            if cand is self._queue[0]:  # FCFS and head-of-queue ties: O(1)
                self._queue.popleft()
            else:
                self._queue.remove(cand)
            self._active[cand.request_id] = cand
            self._generated[cand.request_id] = 0
            self._admit_step[cand.request_id] = self._step
            self._log("admit", cand.request_id)
            admitted.append(cand)
        return admitted

    def record_token(self, request_id: int, token: int | None = None) -> str | None:
        """Count one generated token; decide and apply retirement.

        Returns ``"eos"`` / ``"length"`` when this token finishes the
        request (the slot is freed immediately), else ``None``. Backends
        without real tokens (the analytical simulator) pass no ``token``
        and rely on length retirement alone.
        """
        if request_id not in self._active:
            raise KeyError(f"request {request_id} is not active")
        req = self._active[request_id]
        self._generated[request_id] += 1
        reason: str | None = None
        if self.eos_token is not None and token == self.eos_token:
            reason = "eos"
        elif self._generated[request_id] >= req.max_new_tokens:
            reason = "length"
        if reason is not None:
            del self._active[request_id]
            self._retire_step[request_id] = self._step
            self._log("retire", request_id, reason)
        return reason

    def advance(self) -> int:
        """End the current decode iteration; returns the new step index."""
        self._step += 1
        return self._step

    # -- bulk stepping ---------------------------------------------------

    def decode_horizon(self) -> int:
        """Decode iterations until the next *length* retirement.

        With the current batch left alone (no admissions, no EOS), every
        active request survives the next ``decode_horizon() - 1``
        iterations and at least one retires on the last. This is the
        longest stretch :meth:`record_tokens` may commit in one call.
        Returns 0 when no request is active.
        """
        if not self._active:
            return 0
        return min(req.max_new_tokens - self._generated[rid]
                   for rid, req in self._active.items())

    def record_tokens(self, steps: int) -> list[int]:
        """Commit ``steps`` whole decode iterations in one call.

        Equivalent to ``steps`` rounds of :meth:`record_token` for every
        active request (no real tokens, so length retirement only)
        followed by :meth:`advance` — same generated counts, same event
        log, same step indices — without ``steps * batch`` Python
        round-trips. ``steps`` must not exceed :meth:`decode_horizon`,
        so only the final iteration can retire anyone. Returns the ids
        retired by that final iteration, in admission order.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if not self._active:
            raise ValueError("no active requests to record tokens for")
        if steps > self.decode_horizon():
            raise ValueError(
                f"steps={steps} overruns the decode horizon "
                f"({self.decode_horizon()}): a retirement would be skipped")
        self._step += steps - 1  # land on the retiring iteration
        retired: list[int] = []
        for rid in list(self._active):
            req = self._active[rid]
            self._generated[rid] += steps
            if self._generated[rid] >= req.max_new_tokens:
                del self._active[rid]
                self._retire_step[rid] = self._step
                self._log("retire", rid, "length")
                retired.append(rid)
        self._step += 1
        return retired

    # -- introspection ---------------------------------------------------

    def to_timeline(self) -> Timeline:
        """Render the event log as a step-indexed :class:`Timeline`.

        Each request gets a lane with its ``queued`` and ``active``
        phases (a retirement during step ``s`` ends the span at ``s+1``);
        export with ``to_chrome_trace(time_unit=...)``.
        """
        tl = Timeline()
        for rid in sorted(self._enqueue_step):
            lane = f"request-{rid}"
            enq = self._enqueue_step[rid]
            adm = self._admit_step.get(rid, self._step)
            tl.record_instant(lane, enq, "enqueue")
            if adm > enq:
                tl.record(lane, enq, adm, "queued")
            if rid in self._admit_step:
                end = self._retire_step.get(rid, self._step)
                tl.record(lane, adm, end + 1, "active")
            if rid in self._retire_step:
                reason = next(e.reason for e in self.events
                              if e.kind == "retire" and e.request_id == rid)
                tl.record_instant(lane, self._retire_step[rid] + 1,
                                  f"retire ({reason})")
        return tl
