"""repro: a reproduction of DeepSpeed Inference (SC'22).

Two coupled layers:

* a **functional engine** — NumPy transformer inference with real
  tensor/pipeline/expert-parallel execution, KV caching, MoE routing and
  INT8 quantization, tested for numerical equivalence against dense
  references (`repro.model`, `repro.parallel`, `repro.comm.functional`);
* a **performance model** — hardware specs, collective cost models,
  fusion-aware kernel rooflines, discrete-event pipeline/offload/stream
  simulations, and engines that regenerate every table and figure of the
  paper (`repro.hardware`, `repro.kernels`, `repro.engine`, `repro.zero`,
  `repro.baselines`, `repro.bench`).

Quick start::

    from repro.engine import InferenceEngine
    engine = InferenceEngine("lm-175b")
    report = engine.estimate(batch=1, prompt_len=128, gen_tokens=8)
    print(report.token_latency, report.tokens_per_second)
"""

__version__ = "1.0.0"

from .rng import SeedLike, as_generator

__all__ = ["SeedLike", "as_generator"]
